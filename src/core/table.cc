// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/table.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "util/cycle_clock.h"

namespace deltamerge {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  DM_CHECK_MSG(!schema_.columns.empty(), "a table needs at least one column");
  columns_.reserve(schema_.columns.size());
  for (const ColumnSpec& spec : schema_.columns) {
    columns_.push_back(MakeColumn(spec.value_width));
  }
}

Table::~Table() {
  DM_CHECK_MSG(epochs_.pinned_count() == 0,
               "Table destroyed while snapshots are still pinned");
}

std::unique_ptr<Table> Table::FromColumns(
    Schema schema, std::vector<std::unique_ptr<ColumnBase>> columns) {
  const uint64_t rows = columns.empty() ? 0 : columns[0]->size();
  ValidityVector validity;
  validity.Append(rows);
  return FromColumns(std::move(schema), std::move(columns),
                     std::move(validity));
}

std::unique_ptr<Table> Table::FromColumns(
    Schema schema, std::vector<std::unique_ptr<ColumnBase>> columns,
    ValidityVector validity) {
  auto t = std::make_unique<Table>(schema);
  DM_CHECK_MSG(columns.size() == t->columns_.size(),
               "column count does not match schema");
  const uint64_t rows = columns.empty() ? 0 : columns[0]->size();
  for (size_t i = 0; i < columns.size(); ++i) {
    DM_CHECK_MSG(columns[i]->value_width() == schema.columns[i].value_width,
                 "column width does not match schema");
    DM_CHECK_MSG(columns[i]->size() == rows, "columns have unequal row counts");
  }
  DM_CHECK_MSG(validity.size() == rows,
               "validity vector does not span the column rows");
  {
    // The table is not yet published, but validity_ is a guarded member:
    // take the writer lock so the assignment is well-formed under the
    // analysis (cold path — one uncontended acquisition per table build).
    WriterMutexLock lock(t->mu_);
    t->columns_ = std::move(columns);
    t->validity_ = std::move(validity);
  }
  return t;
}

uint64_t Table::num_rows() const {
  ReaderMutexLock lock(mu_);
  return validity_.size();
}

uint64_t Table::valid_rows() const {
  ReaderMutexLock lock(mu_);
  return validity_.valid_count();
}

size_t Table::memory_bytes() const {
  ReaderMutexLock lock(mu_);
  size_t total = 0;
  for (const auto& c : columns_) total += c->memory_bytes();
  return total;
}

uint64_t Table::InsertRow(std::span<const uint64_t> keys) {
  DM_CHECK_MSG(keys.size() == columns_.size(),
               "key count does not match column count");
  TableJournal* journal = nullptr;
  uint64_t lsn = 0;
  uint64_t row;
  {
    WriterMutexLock lock(mu_);
    journal = journal_;
    if (journal != nullptr) lsn = journal->LogInsert(keys);
    const uint64_t t0 = CycleClock::Now();
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c]->InsertKey(keys[c]);
    }
    // Advance the commit clock BEFORE stamping: the new row's timestamp is
    // strictly greater than any snapshot's read timestamp captured earlier.
    row = validity_.Append(1, epochs_.AdvanceClock());
    delta_update_cycles_.fetch_add(CycleClock::Now() - t0,
                                   std::memory_order_relaxed);
  }
  if (journal != nullptr) journal->Acknowledge(lsn);
  return row;
}

uint64_t Table::InsertRows(std::span<const uint64_t> row_major_keys,
                           uint64_t num_rows, TaskQueue* queue) {
  const size_t nc = columns_.size();
  DM_CHECK_MSG(row_major_keys.size() == num_rows * nc,
               "batch size does not match row count x column count");
  // Journal attach/detach is open/close-time only (see AttachJournal), so
  // the hook read here cannot race a detach; reading it *before* the
  // exclusive lock is what lets the whole batch record — header, row-major
  // key memcpy, and payload CRC — be framed with no lock held. Under the
  // lock the journal takes one buffered append per record (PreparedBatch +
  // Crc32Combine), and the batch is covered by a single Acknowledge: group
  // commit pays one fdatasync per batch, not per row. A batch beyond the
  // journal's per-record key bound is chunked into several records (still
  // framed out here, still one Acknowledge) so a record can never outgrow
  // the WAL's frame-length field or replay's cap on it; each chunk stays
  // atomic and a crash recovers a chunk prefix — all unacknowledged.
  TableJournal* journal = this->journal();
  std::vector<PreparedBatch> batches;
  if (journal != nullptr && num_rows > 0) {
    const uint64_t chunk_rows =
        std::max<uint64_t>(1, journal->MaxBatchKeys() / nc);
    for (uint64_t r = 0; r < num_rows; r += chunk_rows) {
      const uint64_t n = std::min(chunk_rows, num_rows - r);
      batches.push_back(journal->PrepareInsertBatch(
          row_major_keys.subspan(r * nc, n * nc), n, nc));
    }
  }
  uint64_t lsn = 0;
  uint64_t first;
  {
    WriterMutexLock lock(mu_);
    for (const PreparedBatch& batch : batches) {
      lsn = journal->LogInsertBatch(batch);
    }
    const uint64_t t0 = CycleClock::Now();
    if (queue == nullptr) {
      for (uint64_t r = 0; r < num_rows; ++r) {
        for (size_t c = 0; c < nc; ++c) {
          columns_[c]->InsertKey(row_major_keys[r * nc + c]);
        }
      }
    } else {
      // Delta-update parallelization (§7.2): one task per column applies the
      // whole batch. Columns are independent, so no further locking is
      // needed.
      for (size_t c = 0; c < nc; ++c) {
        queue->Submit([this, row_major_keys, num_rows, nc, c] {
          for (uint64_t r = 0; r < num_rows; ++r) {
            columns_[c]->InsertKey(row_major_keys[r * nc + c]);
          }
        });
      }
      queue->WaitAll();
    }
    first = validity_.Append(num_rows, epochs_.AdvanceClock());
    delta_update_cycles_.fetch_add(CycleClock::Now() - t0,
                                   std::memory_order_relaxed);
  }
  // One durability wait covers the whole batch: the single batch record
  // must be durable before any of its rows count as acknowledged.
  if (journal != nullptr && num_rows > 0) journal->Acknowledge(lsn);
  return first;
}

uint64_t Table::UpdateRow(uint64_t row, std::span<const uint64_t> keys) {
  DM_CHECK_MSG(keys.size() == columns_.size(),
               "key count does not match column count");
  TableJournal* journal = nullptr;
  uint64_t lsn = 0;
  uint64_t new_row;
  {
    WriterMutexLock lock(mu_);
    journal = journal_;
    if (journal != nullptr) lsn = journal->LogUpdate(row, keys);
    const uint64_t t0 = CycleClock::Now();
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c]->InsertKey(keys[c]);
    }
    // One commit timestamp covers both halves of the update — the new
    // version and the old one's tombstone switch atomically at ts in every
    // snapshot's history.
    const uint64_t ts = epochs_.AdvanceClock();
    new_row = validity_.Append(1, ts);
    if (row < new_row) InvalidateLocked(row, ts);
    delta_update_cycles_.fetch_add(CycleClock::Now() - t0,
                                   std::memory_order_relaxed);
  }
  if (journal != nullptr) journal->Acknowledge(lsn);
  return new_row;
}

Status Table::DeleteRow(uint64_t row) {
  TableJournal* journal = nullptr;
  uint64_t lsn = 0;
  {
    WriterMutexLock lock(mu_);
    if (row >= validity_.size()) {
      return Status::OutOfRange("row id beyond table size");
    }
    journal = journal_;
    if (journal != nullptr) lsn = journal->LogDelete(row);
    InvalidateLocked(row, epochs_.AdvanceClock());
  }
  if (journal != nullptr) journal->Acknowledge(lsn);
  return Status::OK();
}

void Table::InvalidateLocked(uint64_t row, uint64_t ts) {
  validity_.Invalidate(row, ts);
  // Keep the tombstone log bounded: drop every entry at or below the
  // oldest pinned snapshot's read timestamp (such entries answer "invalid"
  // whether present or pruned). Safe under the exclusive lock — a snapshot
  // pins its slot (read ts 0, "unknown", which blocks pruning) before
  // taking the shared lock to capture and publish its real read ts, so any
  // capture still in flight holds the minimum at 0 and a capture that
  // starts later observes the post-prune state. With nothing pinned the
  // minimum is UINT64_MAX and the whole log drops.
  constexpr uint64_t kTombstonePruneThreshold = 4096;
  if (validity_.tombstone_log_size() >= kTombstonePruneThreshold) {
    validity_.PruneTombstonesBefore(epochs_.MinPinnedReadTs());
  }
}

// ---------------------------------------------------------------------------
// Optimistic multi-row transactions
// ---------------------------------------------------------------------------

bool Table::Transaction::ReadRowValid(uint64_t row) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  const bool valid = table_->IsRowValid(row);
  readset_.push_back(TxnRead{row, valid});
  return valid;
}

void Table::Transaction::Insert(std::span<const uint64_t> keys) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  DM_CHECK_MSG(keys.size() == table_->num_columns(),
               "key count does not match column count");
  ops_.push_back(TxnOp{TxnOp::Kind::kInsert, 0,
                       std::vector<uint64_t>(keys.begin(), keys.end())});
}

void Table::Transaction::Update(uint64_t row, std::span<const uint64_t> keys) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  DM_CHECK_MSG(keys.size() == table_->num_columns(),
               "key count does not match column count");
  ops_.push_back(TxnOp{TxnOp::Kind::kUpdate, row,
                       std::vector<uint64_t>(keys.begin(), keys.end())});
}

void Table::Transaction::Delete(uint64_t row) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  ops_.push_back(TxnOp{TxnOp::Kind::kDelete, row, {}});
}

void Table::Transaction::Abort() {
  ops_.clear();
  readset_.clear();
  table_ = nullptr;
}

Status Table::Transaction::Commit() {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  Table* table = table_;
  table_ = nullptr;  // consumed either way
  const Status st = table->CommitTxnOps(ops_, readset_);
  ops_.clear();
  readset_.clear();
  return st;
}

Status Table::CommitTxnOps(std::span<const TxnOp> ops,
                           std::span<const TxnRead> readset) {
  // Frame the commit record with NO lock held (like PrepareInsertBatch) —
  // optimistically: an abort wastes the encode, a commit never pays it
  // inside the critical section.
  TableJournal* journal = this->journal();
  PreparedBatch prepared;
  if (journal != nullptr && !ops.empty()) {
    prepared = journal->PrepareTxnCommit(ops, num_columns());
  }
  uint64_t lsn = 0;
  Status st;
  {
    WriterMutexLock lock(mu_);
    st = CommitTxnLocked(ops, readset,
                         journal != nullptr ? &prepared : nullptr, &lsn);
    journal = journal_;  // the attach may have changed since begin
  }
  if (st.ok() && journal != nullptr && lsn != 0) journal->Acknowledge(lsn);
  return st;
}

bool Table::ValidateReadset(std::span<const TxnRead> readset) const {
  ReaderMutexLock lock(mu_);
  for (const TxnRead& e : readset) {
    const bool valid = e.row < validity_.size() && validity_.IsValid(e.row);
    if (valid != e.observed_valid) return false;
  }
  return true;
}

Status Table::CommitTxnLocked(std::span<const TxnOp> ops,
                              std::span<const TxnRead> readset,
                              const PreparedBatch* prepared,
                              uint64_t* out_lsn) {
  // Validate: every readset observation must still hold. Rows never
  // disappear (the table is insert-only), so a recorded row id is always
  // in range — unless it was recorded against a size the table has not
  // reached yet, which cannot happen (reads observe committed state).
  for (const TxnRead& e : readset) {
    const bool valid = e.row < validity_.size() && validity_.IsValid(e.row);
    if (valid != e.observed_valid) {
      ++txn_aborts_;
      return Status::Aborted("transaction readset conflict");
    }
  }
  if (ops.empty()) {
    ++txn_commits_;
    return Status::OK();
  }
  // Log before mutating (the single-row discipline): the WAL sequence is
  // the authoritative serialization of the write history.
  if (journal_ != nullptr && prepared != nullptr) {
    *out_lsn = journal_->LogTxnCommit(*prepared);
  }
  // One commit timestamp for the whole transaction: every inserted row and
  // every tombstone it creates switches visibility atomically at `ts`.
  const uint64_t ts = epochs_.AdvanceClock();
  const uint64_t t0 = CycleClock::Now();
  for (const TxnOp& op : ops) {
    switch (op.kind) {
      case TxnOp::Kind::kInsert: {
        for (size_t c = 0; c < columns_.size(); ++c) {
          columns_[c]->InsertKey(op.keys[c]);
        }
        validity_.Append(1, ts);
        break;
      }
      case TxnOp::Kind::kUpdate: {
        for (size_t c = 0; c < columns_.size(); ++c) {
          columns_[c]->InsertKey(op.keys[c]);
        }
        const uint64_t new_row = validity_.Append(1, ts);
        // Liberal write, mirroring UpdateRow: an out-of-range or already-
        // dead target degrades to a plain insert of the new version.
        if (op.target_row < new_row) InvalidateLocked(op.target_row, ts);
        break;
      }
      case TxnOp::Kind::kDelete: {
        // Liberal write: deleting a dead or out-of-range row is a no-op
        // (replay must accept what the live commit accepted).
        if (op.target_row < validity_.size()) {
          InvalidateLocked(op.target_row, ts);
        }
        break;
      }
    }
  }
  ++txn_commits_;
  delta_update_cycles_.fetch_add(CycleClock::Now() - t0,
                                 std::memory_order_relaxed);
  return Status::OK();
}

Table::Transaction Table::BeginTransaction() {
  return Transaction(this, epochs_.current_epoch());
}

Table::TxnStats Table::txn_stats() const {
  ReaderMutexLock lock(mu_);
  return TxnStats{txn_commits_, txn_aborts_};
}

Snapshot Table::CreateSnapshot() const {
  // Pin first, capture second: any generation retired after this point
  // carries an epoch tag >= ours and therefore outlives this snapshot.
  const uint32_t slot = epochs_.Pin();
  const uint64_t pinned_epoch = epochs_.current_epoch();
  ReaderMutexLock lock(mu_);
  Snapshot snap(&epochs_, slot, pinned_epoch, &mu_, &validity_);
  snap.visible_rows_ = validity_.size();
  snap.valid_rows_ = validity_.valid_count();
  // The read timestamp must be taken under the lock: every commit already
  // applied advanced the clock to its own timestamp before releasing the
  // exclusive lock (so it reads as visible here), and every later commit
  // will advance past this value before stamping (so it reads as
  // invisible).
  snap.read_ts_ = epochs_.current_epoch();
  if (shared_scans_.load(std::memory_order_relaxed)) {
    snap.gate_ = &scan_gate_;
  }
  snap.cols_.reserve(columns_.size());
  for (const auto& c : columns_) {
    snap.cols_.push_back(c->CaptureView(snap.visible_rows_));
  }
  // Publish the read ts so tombstone pruning can advance past every entry
  // this snapshot will never consult.
  epochs_.PublishPinnedReadTs(slot, snap.read_ts_);
  return snap;
}

std::vector<Table::ColumnShape> Table::column_shapes() const {
  ReaderMutexLock lock(mu_);
  std::vector<ColumnShape> shapes;
  shapes.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnBase& c = *columns_[i];
    ColumnShape s;
    s.nm = c.main_size();
    s.nd_active = c.delta_size();
    s.nd_frozen = c.frozen_size();
    s.um = c.main_unique();
    s.ud = c.delta_unique();
    s.value_width = c.value_width();
    shapes.push_back(s);
  }
  return shapes;
}

bool Table::IsRowValid(uint64_t row) const {
  ReaderMutexLock lock(mu_);
  return row < validity_.size() && validity_.IsValid(row);
}

uint64_t Table::GetKey(size_t col, uint64_t row) const {
  ReaderMutexLock lock(mu_);
  return columns_[col]->GetKey(row);
}

uint64_t Table::CountEquals(size_t col, uint64_t key) const {
  ReaderMutexLock lock(mu_);
  return columns_[col]->CountEqualsKey(key);
}

uint64_t Table::CountRange(size_t col, uint64_t lo, uint64_t hi) const {
  ReaderMutexLock lock(mu_);
  return columns_[col]->CountRangeKeys(lo, hi);
}

uint64_t Table::SumColumn(size_t col) const {
  ReaderMutexLock lock(mu_);
  return columns_[col]->SumKeys();
}

uint64_t Table::delta_rows() const {
  ReaderMutexLock lock(mu_);
  // All columns receive every row, so any column's delta size is the count.
  return columns_.empty() ? 0 : columns_[0]->delta_size();
}

void Table::AttachJournal(TableJournal* journal) {
  WriterMutexLock lock(mu_);
  journal_ = journal;
}

TableJournal* Table::journal() const {
  ReaderMutexLock lock(mu_);
  return journal_;
}

CheckpointCapture Table::BuildCheckpointCaptureLocked(
    uint64_t replay_lsn) const {
  // Shape and column serializers only — the validity bits come from the
  // freeze instant (see Merge), because the checkpoint must reflect
  // exactly the records below replay_lsn.
  CheckpointCapture cap;
  cap.replay_lsn = replay_lsn;
  cap.main_rows = columns_.empty() ? 0 : columns_[0]->main_size();
  cap.columns.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    cap.columns.push_back({columns_[i]->value_width(),
                           schema_.columns[i].name,
                           columns_[i]->CaptureMainSerializer()});
  }
  return cap;
}

Result<TableMergeReport> Table::Merge(const TableMergeOptions& options) {
  bool expected = false;
  if (!merge_running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("a merge is already in progress");
  }

  const uint64_t t0 = CycleClock::Now();
  TableMergeReport report;

  // Phase A (brief exclusive lock): freeze every column's delta. With a
  // journal attached, the freeze instant also rotates the WAL: records
  // before it describe rows this merge folds into main (the checkpoint will
  // cover them), records after it are the post-checkpoint replay tail. The
  // checkpoint's validity bits are captured HERE, not at commit: they must
  // reflect exactly the records below replay_lsn — a tombstone applied
  // in-memory during the merge body belongs to the replay tail, and baking
  // it into the checkpoint would make recovery reflect a record that may
  // never have become durable (not a prefix of the logged history).
  TableJournal* journal = nullptr;
  uint64_t replay_lsn = 0;
  std::vector<uint64_t> freeze_validity_words;
  std::vector<uint64_t> freeze_insert_ts;
  uint64_t freeze_commit_clock = 0;
  uint64_t freeze_rows = 0;
  uint64_t freeze_valid_rows = 0;
  {
    WriterMutexLock lock(mu_);
    journal = journal_;
    for (auto& c : columns_) c->FreezeDelta();
    report.rows_merged = columns_.empty() ? 0 : columns_[0]->frozen_size();
    if (journal != nullptr) {
      replay_lsn = journal->OnMergeFreezeLocked();
      // At the freeze instant the fresh active delta is empty, so every
      // existing row is about to be folded into the new main: the full
      // validity prefix is exactly what the checkpoint covers. The insert
      // timestamps and commit clock ride along — recovery restores the
      // MVCC column and seeds the clock so the restored stamps stay below
      // every post-restart read timestamp.
      freeze_rows = validity_.size();
      freeze_validity_words = validity_.CopyWordsPrefix(freeze_rows);
      freeze_insert_ts = validity_.CopyInsertTsPrefix(freeze_rows);
      freeze_commit_clock = epochs_.current_epoch();
      freeze_valid_rows = validity_.valid_count();
    }
  }

  // Phase B (no lock): merge each column against its frozen snapshot.
  // Inserts continue into the fresh active deltas; readers see main +
  // frozen + active.
  if (options.parallelism == MergeParallelism::kColumnTasks &&
      options.num_threads > 1) {
    TaskQueue queue(options.num_threads);
    std::mutex stats_mu;
    for (auto& c : columns_) {
      ColumnBase* col = c.get();
      queue.Submit([col, &options, &stats_mu, &report] {
        MergeStats s = col->PrepareMerge(options.merge, nullptr);
        std::lock_guard<std::mutex> g(stats_mu);
        report.stats.Accumulate(s);
      });
    }
    queue.WaitAll();
  } else if (options.parallelism == MergeParallelism::kIntraColumn &&
             options.num_threads > 1) {
    ThreadTeam team(options.num_threads);
    for (auto& c : columns_) {
      report.stats.Accumulate(c->PrepareMerge(options.merge, &team));
      if (options.inter_column_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.inter_column_delay_us));
      }
    }
  } else {
    for (auto& c : columns_) {
      report.stats.Accumulate(c->PrepareMerge(options.merge, nullptr));
      if (options.inter_column_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.inter_column_delay_us));
      }
    }
  }

  // Phase C (brief exclusive lock): atomically install all merged mains.
  // Superseded generations are retired, not destroyed — snapshots pinned
  // before this instant may still be scanning them.
  //
  // With a journal attached, pin an epoch *before* the lock (Pin can spin
  // for a free slot; never do that under the exclusive lock) so the newly
  // installed mains survive later commits while the checkpoint serializes
  // them lock-free.
  uint32_t ckpt_slot = 0;
  if (journal != nullptr) ckpt_slot = epochs_.Pin();
  CheckpointCapture capture;
  {
    WriterMutexLock lock(mu_);
    for (auto& c : columns_) c->CommitMerge(&epochs_);
    if (journal != nullptr) {
      capture = BuildCheckpointCaptureLocked(replay_lsn);
      DM_CHECK_MSG(capture.main_rows == freeze_rows,
                   "merged main does not match the freeze-instant rows");
      capture.validity_words = std::move(freeze_validity_words);
      capture.insert_ts = std::move(freeze_insert_ts);
      capture.commit_clock = freeze_commit_clock;
      capture.valid_main_rows = freeze_valid_rows;
      capture.AdoptPin(&epochs_, ckpt_slot);
      // Publish UINT64_MAX — "consults nothing" — so the pin never blocks
      // tombstone pruning (the capture carries its own validity copy).
      epochs_.PublishPinnedReadTs(ckpt_slot, UINT64_MAX);
    }
  }
  epochs_.ReclaimExpired();

  report.wall_cycles = CycleClock::Now() - t0;
  // Release the merge slot BEFORE the checkpoint I/O: the capture's epoch
  // pin keeps the serialized mains alive even if the next merge commits
  // while the file is still being written, so checkpoint latency must not
  // throttle the merge cadence (the journal serializes concurrent
  // checkpoint writes internally).
  merge_running_.store(false);
  if (journal != nullptr) {
    journal->OnMergeCommitted(std::move(capture));
  }
  return report;
}

Result<uint64_t> Table::CompactCheckpoint() {
  // Take the merge slot for the whole capture: the freeze/commit sections
  // of a concurrent merge must not interleave with the rotation (the
  // replay LSN would no longer cleanly partition the history), and the
  // slot also guarantees no frozen delta exists while we hold it.
  bool expected = false;
  if (!merge_running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("a merge is already in progress");
  }
  // Pin before the lock (Pin can spin for a free slot; never do that under
  // the exclusive lock) so the captured mains survive later merge commits
  // while the checkpoint serializes lock-free.
  const uint32_t ckpt_slot = epochs_.Pin();
  CheckpointCapture capture;
  TableJournal* journal = nullptr;
  Status precondition = Status::OK();
  {
    WriterMutexLock lock(mu_);
    journal = journal_;
    const uint64_t delta_tuples =
        columns_.empty() ? 0
                         : columns_[0]->delta_size() + columns_[0]->frozen_size();
    if (journal == nullptr) {
      precondition = Status::FailedPrecondition(
          "compaction checkpoint requires an attached journal");
    } else if (delta_tuples != 0) {
      precondition = Status::FailedPrecondition(
          "compaction checkpoint requires an empty delta (merge first)");
    } else {
      // Same freeze discipline as a merge: rotate the WAL so records below
      // the returned LSN are exactly the ones this checkpoint covers, then
      // capture the validity bits at the very same instant. Unlike a merge
      // there is no body for tombstones to race — the whole capture sits
      // inside one critical section.
      const uint64_t replay_lsn = journal->OnMergeFreezeLocked();
      capture = BuildCheckpointCaptureLocked(replay_lsn);
      DM_CHECK_MSG(capture.main_rows == validity_.size(),
                   "compaction capture must cover every row (empty delta)");
      capture.validity_words = validity_.CopyWordsPrefix(validity_.size());
      capture.insert_ts = validity_.CopyInsertTsPrefix(validity_.size());
      capture.commit_clock = epochs_.current_epoch();
      capture.valid_main_rows = validity_.valid_count();
      capture.AdoptPin(&epochs_, ckpt_slot);
      // Publish UINT64_MAX — "consults nothing" — so the pin never blocks
      // tombstone pruning (the capture carries its own validity copy).
      epochs_.PublishPinnedReadTs(ckpt_slot, UINT64_MAX);
    }
  }
  if (!precondition.ok()) {
    epochs_.Unpin(ckpt_slot);
    merge_running_.store(false);
    return precondition;
  }
  const uint64_t replay_lsn = capture.replay_lsn;
  // Release the merge slot BEFORE the checkpoint I/O (the discipline Merge
  // documents): the capture's epoch pin keeps the serialized mains alive
  // even if a merge commits while the file is still being written.
  merge_running_.store(false);
  DM_RETURN_NOT_OK(journal->OnCompactionCheckpoint(std::move(capture)));
  return replay_lsn;
}

}  // namespace deltamerge
