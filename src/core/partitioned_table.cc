// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/partitioned_table.h"

#include "core/merge_scheduler.h"

namespace deltamerge {

PartitionedTable::PartitionedTable(Schema schema, uint64_t segment_capacity)
    : schema_(std::move(schema)), segment_capacity_(segment_capacity) {
  DM_CHECK_MSG(segment_capacity_ >= 1, "segment capacity must be positive");
  segments_.push_back(std::make_unique<Table>(schema_));
}

size_t PartitionedTable::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

uint64_t PartitionedTable::num_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t rows = 0;
  for (const auto& s : segments_) rows += s->num_rows();
  return rows;
}

void PartitionedTable::RollOverIfFullLocked() {
  if (segments_.back()->num_rows() >= segment_capacity_) {
    segments_.push_back(std::make_unique<Table>(schema_));
  }
}

uint64_t PartitionedTable::InsertRow(std::span<const uint64_t> keys) {
  std::lock_guard<std::mutex> lock(mu_);
  RollOverIfFullLocked();
  uint64_t base = 0;
  for (size_t i = 0; i + 1 < segments_.size(); ++i) {
    base += segments_[i]->num_rows();
  }
  return base + segments_.back()->InsertRow(keys);
}

uint64_t PartitionedTable::GetKey(size_t col, uint64_t global_row) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t row = global_row;
  for (const auto& s : segments_) {
    const uint64_t n = s->num_rows();
    if (row < n) return s->GetKey(col, row);
    row -= n;
  }
  DM_CHECK_MSG(false, "global row id beyond table size");
  return 0;
}

uint64_t PartitionedTable::CountEquals(size_t col, uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& s : segments_) n += s->CountEquals(col, key);
  return n;
}

uint64_t PartitionedTable::CountRange(size_t col, uint64_t lo,
                                      uint64_t hi) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& s : segments_) n += s->CountRange(col, lo, hi);
  return n;
}

uint64_t PartitionedTable::SumColumn(size_t col) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sum = 0;
  for (const auto& s : segments_) sum += s->SumColumn(col);
  return sum;
}

uint64_t PartitionedTable::delta_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& s : segments_) n += s->delta_rows();
  return n;
}

TableMergeReport PartitionedTable::MergeDueSegments(
    const MergeTriggerPolicy& policy, const TableMergeOptions& options) {
  // Snapshot the segment pointers; segments are never removed, and the
  // per-segment Table handles its own concurrency.
  std::vector<Table*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : segments_) snapshot.push_back(s.get());
  }
  TableMergeReport total;
  for (Table* s : snapshot) {
    if (!ShouldMerge(*s, policy)) continue;
    auto result = s->Merge(options);
    if (!result.ok()) continue;  // segment merge already running; skip
    const TableMergeReport& r = result.ValueOrDie();
    total.stats.Accumulate(r.stats);
    total.wall_cycles += r.wall_cycles;
    total.rows_merged += r.rows_merged;
  }
  return total;
}

TableMergeReport PartitionedTable::MergeAll(const TableMergeOptions& options) {
  MergeTriggerPolicy everything;
  everything.delta_fraction = 0.0;
  everything.min_delta_rows = 1;
  return MergeDueSegments(everything, options);
}

}  // namespace deltamerge
