// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/partitioned_table.h"

#include <algorithm>
#include <latch>

#include "util/cycle_clock.h"

namespace deltamerge {

// ---------------------------------------------------------------------------
// PartitionedTable
// ---------------------------------------------------------------------------

PartitionedTable::PartitionedTable(Schema schema, uint64_t segment_capacity,
                                   SegmentHooks* hooks,
                                   std::span<const RecoveredSegment> recovered)
    : schema_(std::move(schema)),
      segment_capacity_(segment_capacity),
      hooks_(hooks) {
  DM_CHECK_MSG(segment_capacity_ >= 1, "segment capacity must be positive");
  if (recovered.empty()) {
    auto seg = std::make_shared<Segment>();
    seg->base = 0;
    if (hooks_ != nullptr) {
      seg->table = hooks_->CreateSegment(0);
      DM_CHECK_MSG(seg->table != nullptr, "segment hook returned no table");
    } else {
      seg->owned = std::make_unique<Table>(schema_);
      seg->table = seg->owned.get();
    }
    segments_.push_back(std::move(seg));
    return;
  }
  for (size_t i = 0; i < recovered.size(); ++i) {
    DM_CHECK_MSG(recovered[i].table != nullptr,
                 "recovered segment without a table");
    const bool must_be_sealed = i + 1 < recovered.size();
    DM_CHECK_MSG(recovered[i].sealed == must_be_sealed,
                 "exactly the non-tail segments must be sealed");
    DM_CHECK_MSG(!must_be_sealed ||
                     recovered[i].table->num_rows() == segment_capacity_,
                 "a sealed segment must hold exactly the segment capacity");
    DM_CHECK_MSG(recovered[i].table->num_rows() <= segment_capacity_,
                 "a recovered segment exceeds the segment capacity");
    auto seg = std::make_shared<Segment>();
    seg->table = recovered[i].table;
    seg->base = i * segment_capacity_;
    seg->sealed.store(recovered[i].sealed, std::memory_order_relaxed);
    segments_.push_back(std::move(seg));
  }
}

size_t PartitionedTable::num_segments() const {
  ReaderMutexLock lock(segments_mu_);
  return segments_.size();
}

uint64_t PartitionedTable::num_rows() const {
  ReaderMutexLock lock(segments_mu_);
  const Segment& tail = *segments_.back();
  return tail.base + tail.table->num_rows();
}

std::vector<std::shared_ptr<PartitionedTable::Segment>>
PartitionedTable::CaptureSegments() const {
  ReaderMutexLock lock(segments_mu_);
  return segments_;
}

std::shared_ptr<PartitionedTable::Segment> PartitionedTable::SlotAt(
    size_t i) const {
  ReaderMutexLock lock(segments_mu_);
  DM_CHECK_MSG(i < segments_.size(), "segment index out of range");
  return segments_[i];
}

template <typename Fn>
uint64_t PartitionedTable::FanOutSum(Fn&& fn) const {
  const std::vector<std::shared_ptr<Segment>> segs = CaptureSegments();
  TaskQueue* pool = read_pool_.load(std::memory_order_acquire);
  if (pool == nullptr || segs.size() < 2) {
    uint64_t total = 0;
    for (const auto& s : segs) total += fn(*s);
    return total;
  }
  // Per-call completion latch rather than TaskQueue::WaitAll: WaitAll
  // drains the whole pool, so one reader's aggregate would wait on every
  // other reader's (and a batch writer's) in-flight tasks — on a busy
  // shared pool that couples unrelated latencies and can starve a read.
  // The caller scans the last segment itself instead of parking in the
  // wait: same work, one fewer queued task, never an idle core.
  std::vector<uint64_t> partial(segs.size(), 0);
  const size_t pooled = segs.size() - 1;
  std::latch done(static_cast<std::ptrdiff_t>(pooled));
  for (size_t i = 0; i < pooled; ++i) {
    pool->Submit([&fn, &partial, &segs, &done, i] {
      partial[i] = fn(*segs[i]);
      done.count_down();
    });
  }
  partial[pooled] = fn(*segs[pooled]);
  done.wait();
  uint64_t total = 0;
  for (uint64_t v : partial) total += v;
  return total;
}

uint64_t PartitionedTable::valid_rows() const {
  return FanOutSum([](const Segment& s) { return s.table->valid_rows(); });
}

uint64_t PartitionedTable::delta_rows() const {
  return FanOutSum([](const Segment& s) { return s.table->delta_rows(); });
}

uint64_t PartitionedTable::tail_delta_rows() const {
  std::shared_ptr<Segment> tail;
  {
    ReaderMutexLock lock(segments_mu_);
    tail = segments_.back();
  }
  return tail->table->delta_rows();
}

std::shared_ptr<PartitionedTable::Segment> PartitionedTable::TailLocked()
    const {
  ReaderMutexLock lock(segments_mu_);
  return segments_.back();
}

void PartitionedTable::RollOverIfFullLocked() {
  // tail_mu_ (held) keeps the tail identity stable: rollover is the vector's
  // only mutator and every rollover holds tail_mu_. The vector accesses
  // themselves still go through segments_mu_ — briefly shared for the reads
  // below, exclusively for the push — so every touch of segments_ is under
  // its guarding lock, on the writer path too.
  std::shared_ptr<Segment> tail;
  size_t index;
  {
    ReaderMutexLock lock(segments_mu_);
    tail = segments_.back();
    index = segments_.size();
  }
  if (tail->table->num_rows() < segment_capacity_) return;
  tail->sealed.store(true, std::memory_order_release);
  auto seg = std::make_shared<Segment>();
  seg->base = index * segment_capacity_;
  if (hooks_ != nullptr) {
    // The hook installs the segment durably (manifest fsync) before
    // returning — deliberately outside segments_mu_, so readers are never
    // blocked behind rollover I/O.
    seg->table = hooks_->CreateSegment(index);
    DM_CHECK_MSG(seg->table != nullptr, "segment hook returned no table");
  } else {
    seg->owned = std::make_unique<Table>(schema_);
    seg->table = seg->owned.get();
  }
  WriterMutexLock lock(segments_mu_);
  segments_.push_back(std::move(seg));
}

uint64_t PartitionedTable::InsertRow(std::span<const uint64_t> keys) {
  MutexLock lock(tail_mu_);
  RollOverIfFullLocked();
  const std::shared_ptr<Segment> tail = TailLocked();
  return tail->base + tail->table->InsertRow(keys);
}

uint64_t PartitionedTable::InsertRows(std::span<const uint64_t> row_major_keys,
                                      uint64_t num_rows, TaskQueue* queue) {
  const size_t nc = schema_.columns.size();
  DM_CHECK_MSG(row_major_keys.size() == num_rows * nc,
               "batch size does not match row count x column count");
  // Sharing one queue between batch ingest and fan-out reads deadlocks:
  // the segment's InsertRows drains the queue while holding its exclusive
  // lock, and a concurrent reader's fan-out task needs that lock shared.
  DM_CHECK_MSG(queue == nullptr ||
                   queue != read_pool_.load(std::memory_order_acquire),
               "the batch queue must not be the attached read pool");
  MutexLock lock(tail_mu_);
  if (num_rows == 0) {
    const std::shared_ptr<Segment> tail = TailLocked();
    return tail->base + tail->table->num_rows();
  }
  uint64_t first = 0;
  bool first_set = false;
  uint64_t done = 0;
  while (done < num_rows) {
    RollOverIfFullLocked();
    const std::shared_ptr<Segment> tail = TailLocked();
    const uint64_t room = segment_capacity_ - tail->table->num_rows();
    const uint64_t n = std::min(room, num_rows - done);
    const uint64_t local =
        tail->table->InsertRows(row_major_keys.subspan(done * nc, n * nc), n,
                                queue);
    if (!first_set) {
      first = tail->base + local;
      first_set = true;
    }
    done += n;
  }
  return first;
}

uint64_t PartitionedTable::UpdateRow(uint64_t global_row,
                                     std::span<const uint64_t> keys) {
  MutexLock lock(tail_mu_);
  RollOverIfFullLocked();
  std::shared_ptr<Segment> tail;
  size_t num_segs;
  {
    ReaderMutexLock slock(segments_mu_);
    tail = segments_.back();
    num_segs = segments_.size();
  }
  // Out-of-range targets are accepted exactly like Table::UpdateRow: the
  // fresh version is appended and nothing is invalidated. The live path
  // and WAL replay must agree on this, so the sharded front door must not
  // be stricter than the segment write path it logs through.
  const size_t owner = global_row / segment_capacity_;
  if (owner + 1 == num_segs) {
    // The superseded row lives in the open tail: the segment's own
    // insert-only update is one atomic operation (and, durably, ONE
    // kUpdate record — both halves recover or neither does).
    return tail->base + tail->table->UpdateRow(global_row - tail->base, keys);
  }
  // Cross-segment: fresh version into the tail FIRST, then the tombstone in
  // the owning sealed segment — the same insert-then-invalidate order a
  // single-segment update applies, so a crash between the halves leaves a
  // state on the schedule's single-row-operation prefix lattice, never an
  // invented one (the recovery tests rely on this order).
  const uint64_t new_row = tail->base + tail->table->InsertRow(keys);
  if (owner < num_segs) {
    std::shared_ptr<Segment> old_seg;
    {
      ReaderMutexLock slock(segments_mu_);
      old_seg = segments_[owner];
    }
    (void)old_seg->table->DeleteRow(global_row - old_seg->base);
  }
  return new_row;
}

Status PartitionedTable::DeleteRow(uint64_t global_row) {
  MutexLock lock(tail_mu_);
  const size_t owner = global_row / segment_capacity_;
  std::shared_ptr<Segment> seg;
  {
    ReaderMutexLock slock(segments_mu_);
    if (owner >= segments_.size()) {
      return Status::OutOfRange("row id beyond table size");
    }
    seg = segments_[owner];
  }
  return seg->table->DeleteRow(global_row - seg->base);
}

// ---------------------------------------------------------------------------
// Optimistic multi-row transactions
// ---------------------------------------------------------------------------

bool PartitionedTable::Transaction::ReadRowValid(uint64_t global_row) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  const bool valid = table_->IsRowValid(global_row);
  readset_.push_back(ReadEntry{global_row, valid});
  return valid;
}

void PartitionedTable::Transaction::Insert(std::span<const uint64_t> keys) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  DM_CHECK_MSG(keys.size() == table_->num_columns(),
               "key count does not match column count");
  ops_.push_back(TxnOp{TxnOp::Kind::kInsert, 0,
                       std::vector<uint64_t>(keys.begin(), keys.end())});
}

void PartitionedTable::Transaction::Update(uint64_t global_row,
                                           std::span<const uint64_t> keys) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  DM_CHECK_MSG(keys.size() == table_->num_columns(),
               "key count does not match column count");
  ops_.push_back(TxnOp{TxnOp::Kind::kUpdate, global_row,
                       std::vector<uint64_t>(keys.begin(), keys.end())});
}

void PartitionedTable::Transaction::Delete(uint64_t global_row) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  ops_.push_back(TxnOp{TxnOp::Kind::kDelete, global_row, {}});
}

void PartitionedTable::Transaction::Abort() {
  ops_.clear();
  readset_.clear();
  table_ = nullptr;
}

Status PartitionedTable::Transaction::Commit() {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  PartitionedTable* table = table_;
  table_ = nullptr;  // consumed either way
  const Status st = table->CommitTxn(ops_, readset_);
  ops_.clear();
  readset_.clear();
  return st;
}

Status PartitionedTable::CommitTxn(
    std::span<const TxnOp> ops,
    std::span<const Transaction::ReadEntry> readset) {
  MutexLock lock(tail_mu_);
  // The segment list cannot change while tail_mu_ is held (rollover is its
  // only mutator and always holds tail_mu_), so one capture serves both
  // validation and decomposition.
  const std::vector<std::shared_ptr<Segment>> segs = CaptureSegments();

  // Phase 1 — validate: every readset observation must still hold. With
  // tail_mu_ held no other logical write can run, so a validation that
  // passes here stays true for the entire apply below.
  for (const Transaction::ReadEntry& e : readset) {
    const size_t owner = static_cast<size_t>(e.row / segment_capacity_);
    bool valid = false;
    if (owner < segs.size()) {
      const Segment& seg = *segs[owner];
      valid = seg.table->IsRowValid(e.row - seg.base);
    }
    if (valid != e.observed_valid) {
      txn_aborts_.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("transaction readset conflict");
    }
  }
  if (ops.empty()) {
    txn_commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // Phase 2 — decompose the global-row op buffer into per-segment groups
  // (contiguous runs in buffer order, target rows rebased to the segment).
  // The tail is simulated so inserts past the capacity route to the
  // segment the mid-commit rollover will create.
  struct OpGroup {
    size_t seg_index;
    std::vector<TxnOp> ops;
  };
  std::vector<OpGroup> groups;
  const auto route = [&groups](size_t seg_index) -> std::vector<TxnOp>& {
    if (groups.empty() || groups.back().seg_index != seg_index) {
      groups.push_back(OpGroup{seg_index, {}});
    }
    return groups.back().ops;
  };
  size_t sim_tail = segs.size() - 1;
  uint64_t sim_tail_rows = segs.back()->table->num_rows();
  for (const TxnOp& op : ops) {
    switch (op.kind) {
      case TxnOp::Kind::kInsert:
      case TxnOp::Kind::kUpdate: {
        // Both append a fresh version to the (possibly rolled-over) tail.
        if (sim_tail_rows == segment_capacity_) {
          ++sim_tail;
          sim_tail_rows = 0;
        }
        const size_t owner =
            static_cast<size_t>(op.target_row / segment_capacity_);
        if (op.kind == TxnOp::Kind::kUpdate && owner == sim_tail) {
          // Superseded row lives in the open tail: the segment's own
          // insert-only update stays one atomic op inside its group.
          route(sim_tail).push_back(
              TxnOp{TxnOp::Kind::kUpdate,
                    op.target_row - sim_tail * segment_capacity_, op.keys});
          ++sim_tail_rows;
          break;
        }
        const uint64_t sim_rows = sim_tail * segment_capacity_ + sim_tail_rows;
        route(sim_tail).push_back(TxnOp{TxnOp::Kind::kInsert, 0, op.keys});
        ++sim_tail_rows;
        if (op.kind == TxnOp::Kind::kUpdate && op.target_row < sim_rows) {
          // Cross-segment update: fresh version first (just routed), then
          // the tombstone in the owning segment — the same
          // insert-then-invalidate order the single-row path applies.
          route(owner).push_back(
              TxnOp{TxnOp::Kind::kDelete,
                    op.target_row - owner * segment_capacity_, {}});
        }
        // An update whose target is beyond every (simulated) row degrades
        // to a plain insert — the liberal contract UpdateRow documents.
        break;
      }
      case TxnOp::Kind::kDelete: {
        const uint64_t sim_rows = sim_tail * segment_capacity_ + sim_tail_rows;
        if (op.target_row >= sim_rows) break;  // liberal no-op
        const size_t owner =
            static_cast<size_t>(op.target_row / segment_capacity_);
        route(owner).push_back(
            TxnOp{TxnOp::Kind::kDelete,
                  op.target_row - owner * segment_capacity_, {}});
        break;
      }
    }
  }

  // Phase 3 — commit the groups in first-op order, each through the
  // segment's Table::Transaction (empty readset: it cannot abort), i.e. as
  // ONE journaled kTxnCommit record, acknowledged before the next group.
  for (const OpGroup& group : groups) {
    if (group.seg_index >= num_segments()) {
      // The simulation filled the previous tail exactly; materialize the
      // next segment (RollOverIfFullLocked re-checks the fill).
      RollOverIfFullLocked();
    }
    const std::shared_ptr<Segment> seg = SlotAt(group.seg_index);
    Table::Transaction txn = seg->table->BeginTransaction();
    for (const TxnOp& op : group.ops) {
      switch (op.kind) {
        case TxnOp::Kind::kInsert:
          txn.Insert(op.keys);
          break;
        case TxnOp::Kind::kUpdate:
          txn.Update(op.target_row, op.keys);
          break;
        case TxnOp::Kind::kDelete:
          txn.Delete(op.target_row);
          break;
      }
    }
    const Status st = txn.Commit();
    DM_CHECK_MSG(st.ok(), "a readset-free group commit cannot abort");
  }
  txn_commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

uint64_t PartitionedTable::GetKey(size_t col, uint64_t global_row) const {
  const size_t owner = global_row / segment_capacity_;
  std::shared_ptr<Segment> seg;
  {
    ReaderMutexLock lock(segments_mu_);
    DM_CHECK_MSG(owner < segments_.size(), "global row id beyond table size");
    seg = segments_[owner];
  }
  const uint64_t local = global_row - seg->base;
  DM_CHECK_MSG(local < seg->table->num_rows(),
               "global row id beyond table size");
  return seg->table->GetKey(col, local);
}

bool PartitionedTable::IsRowValid(uint64_t global_row) const {
  const size_t owner = global_row / segment_capacity_;
  std::shared_ptr<Segment> seg;
  {
    ReaderMutexLock lock(segments_mu_);
    if (owner >= segments_.size()) return false;
    seg = segments_[owner];
  }
  return seg->table->IsRowValid(global_row - seg->base);
}

uint64_t PartitionedTable::CountEquals(size_t col, uint64_t key) const {
  return FanOutSum(
      [&](const Segment& s) { return s.table->CountEquals(col, key); });
}

uint64_t PartitionedTable::CountRange(size_t col, uint64_t lo,
                                      uint64_t hi) const {
  return FanOutSum(
      [&](const Segment& s) { return s.table->CountRange(col, lo, hi); });
}

uint64_t PartitionedTable::SumColumn(size_t col) const {
  return FanOutSum([&](const Segment& s) { return s.table->SumColumn(col); });
}

PartitionedSnapshot PartitionedTable::CreateSnapshot() const {
  PartitionedSnapshot out;
  // The write lock makes the capture atomic at logical-operation
  // granularity: no insert, update, delete, or rollover is mid-flight
  // while the per-segment epochs pin. Readers are unaffected (they never
  // take tail_mu_), and per-segment merge commits need no exclusion — each
  // segment Snapshot is commit-proof on its own.
  MutexLock wlock(tail_mu_);
  ReaderMutexLock slock(segments_mu_);
  out.segment_capacity_ = segment_capacity_;
  out.num_columns_ = schema_.columns.size();
  out.segments_.reserve(segments_.size());
  for (const auto& s : segments_) {
    PartitionedSnapshot::SegmentView v;
    v.base = s->base;
    v.snap = s->table->CreateSnapshot();
    out.valid_rows_ += v.snap.valid_rows();
    out.segments_.push_back(std::move(v));
  }
  const PartitionedSnapshot::SegmentView& tail = out.segments_.back();
  out.visible_rows_ = tail.base + tail.snap.num_rows();
  return out;
}

PartitionedMergeReport PartitionedTable::MergeDueSegments(
    const MergeDaemonPolicy& policy, const TableMergeOptions& options,
    double tail_delta_rows_per_sec, std::atomic<bool>* merge_in_flight) {
  PartitionedMergeReport report;
  const std::vector<std::shared_ptr<Segment>> segs = CaptureSegments();
  for (const auto& seg : segs) {
    const bool sealed = seg->sealed.load(std::memory_order_acquire);
    if (sealed && seg->final_merged.load(std::memory_order_acquire)) {
      // Final-merged segments never merge again — but their journals keep
      // accumulating tombstone records from later deletes/updates of their
      // rows, and without re-checkpointing that backlog replays on every
      // reopen, forever. Evaluate the compaction trigger instead.
      CompactIfDue(*seg, policy, &report);
      continue;
    }
    bool is_final = false;
    if (sealed) {
      // A sealed segment never gains delta tuples again (only tombstones),
      // so any delta it still carries gets one final merge; a clean one is
      // marked delta-free without merging.
      if (seg->table->delta_rows() == 0) {
        seg->final_merged.store(true, std::memory_order_release);
        continue;
      }
      is_final = true;
    } else if (EvaluateMergeTrigger(*seg->table, policy, options.num_threads,
                                    tail_delta_rows_per_sec) ==
               MergeTrigger::kNone) {
      continue;
    }
    if (merge_in_flight != nullptr) {
      merge_in_flight->store(true, std::memory_order_release);
    }
    auto result = seg->table->Merge(options);
    if (merge_in_flight != nullptr) {
      merge_in_flight->store(false, std::memory_order_release);
    }
    if (!result.ok()) {  // segment merge already running; skip
      ++report.failed_merges;
      continue;
    }
    const TableMergeReport& r = result.ValueOrDie();
    report.table.stats.Accumulate(r.stats);
    report.table.wall_cycles += r.wall_cycles;
    report.table.rows_merged += r.rows_merged;
    report.max_segment_wall_cycles =
        std::max(report.max_segment_wall_cycles, r.wall_cycles);
    ++report.segments_merged;
    if (is_final && seg->table->delta_rows() == 0) {
      seg->final_merged.store(true, std::memory_order_release);
      ++report.final_merges;
    }
  }
  return report;
}

void PartitionedTable::CompactIfDue(Segment& seg,
                                    const MergeDaemonPolicy& policy,
                                    PartitionedMergeReport* report) {
  if (policy.compact_uncheckpointed_records == 0) return;  // disabled
  TableJournal* journal = seg.table->journal();
  if (journal == nullptr) return;  // in-memory segment: nothing to replay
  const uint64_t backlog = journal->UncheckpointedRecords();
  if (backlog < policy.compact_uncheckpointed_records) return;
  if (backlog <= seg.compact_failed_at.load(std::memory_order_acquire)) {
    return;  // already failed at this backlog; wait for it to grow
  }
  if (seg.table->CompactCheckpoint().ok()) {
    seg.compact_failed_at.store(0, std::memory_order_release);
    ++report->segments_compacted;
  } else {
    seg.compact_failed_at.store(backlog, std::memory_order_release);
    ++report->failed_compactions;
  }
}

PartitionedMergeReport PartitionedTable::MergeAll(
    const TableMergeOptions& options) {
  MergeDaemonPolicy everything;
  everything.delta_fraction = 0.0;
  everything.min_delta_rows = 1;
  everything.rate_lookahead = false;
  return MergeDueSegments(everything, options);
}

// ---------------------------------------------------------------------------
// PartitionedSnapshot
// ---------------------------------------------------------------------------

uint64_t PartitionedSnapshot::GetKey(size_t col, uint64_t global_row) const {
  DM_DCHECK(valid());
  DM_CHECK_MSG(global_row < visible_rows_, "row beyond the snapshot horizon");
  const size_t owner =
      static_cast<size_t>(global_row / segment_capacity_);
  const SegmentView& v = segments_[owner];
  return v.snap.GetKey(col, global_row - v.base);
}

bool PartitionedSnapshot::IsRowValid(uint64_t global_row) const {
  DM_DCHECK(valid());
  if (global_row >= visible_rows_) return false;
  const size_t owner =
      static_cast<size_t>(global_row / segment_capacity_);
  const SegmentView& v = segments_[owner];
  return v.snap.IsRowValid(global_row - v.base);
}

uint64_t PartitionedSnapshot::CountEquals(size_t col, uint64_t key) const {
  DM_DCHECK(valid());
  uint64_t n = 0;
  for (const SegmentView& v : segments_) n += v.snap.CountEquals(col, key);
  return n;
}

uint64_t PartitionedSnapshot::CountRange(size_t col, uint64_t lo,
                                         uint64_t hi) const {
  DM_DCHECK(valid());
  uint64_t n = 0;
  for (const SegmentView& v : segments_) n += v.snap.CountRange(col, lo, hi);
  return n;
}

uint64_t PartitionedSnapshot::SumColumn(size_t col) const {
  DM_DCHECK(valid());
  uint64_t sum = 0;
  for (const SegmentView& v : segments_) sum += v.snap.SumColumn(col);
  return sum;
}

std::vector<uint64_t> PartitionedSnapshot::CollectEquals(
    size_t col, uint64_t key, bool only_valid) const {
  DM_DCHECK(valid());
  std::vector<uint64_t> out;
  for (const SegmentView& v : segments_) {
    // Per-segment results are ascending and bases are increasing, so the
    // concatenation stays globally sorted.
    for (uint64_t local : v.snap.CollectEquals(col, key, only_valid)) {
      out.push_back(v.base + local);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// PartitionedMergeDaemon
// ---------------------------------------------------------------------------

PartitionedMergeDaemon::PartitionedMergeDaemon(PartitionedTable* table,
                                               MergeDaemonPolicy policy,
                                               TableMergeOptions options)
    : table_(table),
      policy_(policy),
      options_(options),
      poller_(policy.poll_interval_us, [this] { PollOnce(); }) {
  DM_CHECK(table != nullptr);
}

PartitionedMergeDaemon::~PartitionedMergeDaemon() { Stop(); }

void PartitionedMergeDaemon::Start() {
  MutexLock lock(lifecycle_mu_);
  if (poller_.running()) return;
  rate_.Reset(table_->tail_delta_rows());
  poller_.Start();
}

void PartitionedMergeDaemon::Stop() { poller_.Stop(); }

void PartitionedMergeDaemon::Nudge() { poller_.Nudge(); }

void PartitionedMergeDaemon::Pause() { poller_.Pause(); }

void PartitionedMergeDaemon::Resume() { poller_.Resume(); }

bool PartitionedMergeDaemon::paused() const { return poller_.paused(); }

PartitionedMergeDaemonStats PartitionedMergeDaemon::stats() const {
  MutexLock lock(stats_mu_);
  PartitionedMergeDaemonStats out = stats_;
  out.polls = poller_.polls();
  return out;
}

void PartitionedMergeDaemon::PollOnce() {
  // Tail-only arrival-rate estimate: O(1) in the segment count, where the
  // table-wide delta_rows() would lock and scan every segment on each
  // poll. (A just-sealed segment's still-unmerged delta is invisible to
  // the estimate for one rollover — it is merge work, not new arrival.)
  const double delta_rows_per_sec = rate_.Update(table_->tail_delta_rows());

  const PartitionedMergeReport report = table_->MergeDueSegments(
      policy_, options_, delta_rows_per_sec, &merge_in_flight_);

  {
    MutexLock lock(stats_mu_);
    if (report.segments_merged > 0) ++stats_.merge_passes;
    stats_.segments_merged += report.segments_merged;
    stats_.final_merges += report.final_merges;
    stats_.failed_merges += report.failed_merges;
    stats_.segments_compacted += report.segments_compacted;
    stats_.failed_compactions += report.failed_compactions;
    stats_.rows_merged += report.table.rows_merged;
    stats_.merge_wall_cycles += report.table.wall_cycles;
    stats_.max_segment_wall_cycles = std::max(
        stats_.max_segment_wall_cycles, report.max_segment_wall_cycles);
    stats_.merge.Accumulate(report.table.stats);
  }
  // Merges shrank the delta; re-anchor so the shrink is not read as zero
  // arrival next poll.
  if (report.segments_merged > 0) rate_.Rebase(table_->tail_delta_rows());
}

}  // namespace deltamerge
