// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/partitioned_table.h"

#include <algorithm>
#include <latch>

#include "util/cycle_clock.h"

namespace deltamerge {

// ---------------------------------------------------------------------------
// PartitionedTable
// ---------------------------------------------------------------------------

PartitionedTable::PartitionedTable(Schema schema, uint64_t segment_capacity,
                                   SegmentHooks* hooks,
                                   std::span<const RecoveredSegment> recovered)
    : schema_(std::move(schema)),
      segment_capacity_(segment_capacity),
      hooks_(hooks) {
  DM_CHECK_MSG(segment_capacity_ >= 1, "segment capacity must be positive");
  if (recovered.empty()) {
    auto seg = std::make_shared<Segment>();
    seg->base = 0;
    if (hooks_ != nullptr) {
      seg->table = hooks_->CreateSegment(0);
      DM_CHECK_MSG(seg->table != nullptr, "segment hook returned no table");
    } else {
      seg->owned = std::make_unique<Table>(schema_);
      seg->table = seg->owned.get();
    }
    segments_.push_back(std::move(seg));
    return;
  }
  for (size_t i = 0; i < recovered.size(); ++i) {
    DM_CHECK_MSG(recovered[i].table != nullptr,
                 "recovered segment without a table");
    const bool must_be_sealed = i + 1 < recovered.size();
    DM_CHECK_MSG(recovered[i].sealed == must_be_sealed,
                 "exactly the non-tail segments must be sealed");
    DM_CHECK_MSG(!must_be_sealed ||
                     recovered[i].table->num_rows() == segment_capacity_,
                 "a sealed segment must hold exactly the segment capacity");
    DM_CHECK_MSG(recovered[i].table->num_rows() <= segment_capacity_,
                 "a recovered segment exceeds the segment capacity");
    auto seg = std::make_shared<Segment>();
    seg->table = recovered[i].table;
    seg->base = i * segment_capacity_;
    seg->sealed.store(recovered[i].sealed, std::memory_order_relaxed);
    segments_.push_back(std::move(seg));
  }
}

size_t PartitionedTable::num_segments() const {
  ReaderMutexLock lock(segments_mu_);
  return segments_.size();
}

uint64_t PartitionedTable::num_rows() const {
  ReaderMutexLock lock(segments_mu_);
  const Segment& tail = *segments_.back();
  return tail.base + tail.table->num_rows();
}

std::vector<std::shared_ptr<PartitionedTable::Segment>>
PartitionedTable::CaptureSegments() const {
  ReaderMutexLock lock(segments_mu_);
  return segments_;
}

void PartitionedTable::EnableSharedScans(bool on) {
  // Flag write and current-segment sweep are one critical section on
  // segments_mu_, and rollover consults the flag under the same lock at
  // push time — so a racing rollover's segment either gets toggled by this
  // sweep (pushed first) or toggles itself (observed the flag). No segment
  // can miss the policy.
  WriterMutexLock lock(segments_mu_);
  shared_scans_.store(on, std::memory_order_relaxed);
  for (const auto& seg : segments_) {
    seg->table->EnableSharedScans(on);
  }
}

query::ScanGate::Stats PartitionedTable::shared_scan_stats() const {
  query::ScanGate::Stats total;
  for (const auto& seg : CaptureSegments()) {
    const query::ScanGate::Stats s = seg->table->shared_scan_stats();
    total.sweeps += s.sweeps;
    total.queries_served += s.queries_served;
    total.shared_queries += s.shared_queries;
    total.bypasses += s.bypasses;
  }
  return total;
}

std::shared_ptr<PartitionedTable::Segment> PartitionedTable::SlotAt(
    size_t i) const {
  ReaderMutexLock lock(segments_mu_);
  DM_CHECK_MSG(i < segments_.size(), "segment index out of range");
  return segments_[i];
}

template <typename Fn>
uint64_t PartitionedTable::FanOutSum(Fn&& fn) const {
  const std::vector<std::shared_ptr<Segment>> segs = CaptureSegments();
  TaskQueue* pool = read_pool_.load(std::memory_order_acquire);
  if (pool == nullptr || segs.size() < 2) {
    uint64_t total = 0;
    for (const auto& s : segs) total += fn(*s);
    return total;
  }
  // Per-call completion latch rather than TaskQueue::WaitAll: WaitAll
  // drains the whole pool, so one reader's aggregate would wait on every
  // other reader's (and a batch writer's) in-flight tasks — on a busy
  // shared pool that couples unrelated latencies and can starve a read.
  // The caller scans the last segment itself instead of parking in the
  // wait: same work, one fewer queued task, never an idle core.
  //
  // One slot per CACHE LINE, not per uint64_t: adjacent bare slots put up
  // to 8 workers' result stores on one line, and the resulting ownership
  // ping-pong taxes every fan-out read on multi-core hosts (quantified by
  // bench_sharded_scale's fan-out rows in the CI trajectory artifact).
  struct DM_CACHELINE_ALIGNED PaddedSum {
    uint64_t v = 0;
  };
  std::vector<PaddedSum> partial(segs.size());
  const size_t pooled = segs.size() - 1;
  std::latch done(static_cast<std::ptrdiff_t>(pooled));
  for (size_t i = 0; i < pooled; ++i) {
    pool->Submit([&fn, &partial, &segs, &done, i] {
      partial[i].v = fn(*segs[i]);
      done.count_down();
    });
  }
  partial[pooled].v = fn(*segs[pooled]);
  done.wait();
  uint64_t total = 0;
  for (const PaddedSum& p : partial) total += p.v;
  return total;
}

uint64_t PartitionedTable::valid_rows() const {
  return FanOutSum([](const Segment& s) { return s.table->valid_rows(); });
}

uint64_t PartitionedTable::delta_rows() const {
  return FanOutSum([](const Segment& s) { return s.table->delta_rows(); });
}

uint64_t PartitionedTable::tail_delta_rows() const {
  std::shared_ptr<Segment> tail;
  {
    ReaderMutexLock lock(segments_mu_);
    tail = segments_.back();
  }
  return tail->table->delta_rows();
}

std::shared_ptr<PartitionedTable::Segment> PartitionedTable::TailLocked()
    const {
  ReaderMutexLock lock(segments_mu_);
  return segments_.back();
}

void PartitionedTable::RollOverIfFullLocked() {
  // tail_mu_ (held) keeps the tail identity stable: rollover is the vector's
  // only mutator and every rollover holds tail_mu_. The vector accesses
  // themselves still go through segments_mu_ — briefly shared for the reads
  // below, exclusively for the push — so every touch of segments_ is under
  // its guarding lock, on the writer path too.
  std::shared_ptr<Segment> tail;
  size_t index;
  {
    ReaderMutexLock lock(segments_mu_);
    tail = segments_.back();
    index = segments_.size();
  }
  if (tail->table->num_rows() < segment_capacity_) return;
  tail->sealed.store(true, std::memory_order_release);
  auto seg = std::make_shared<Segment>();
  seg->base = index * segment_capacity_;
  if (hooks_ != nullptr) {
    // The hook installs the segment durably (manifest fsync) before
    // returning — deliberately outside segments_mu_, so readers are never
    // blocked behind rollover I/O.
    seg->table = hooks_->CreateSegment(index);
    DM_CHECK_MSG(seg->table != nullptr, "segment hook returned no table");
  } else {
    seg->owned = std::make_unique<Table>(schema_);
    seg->table = seg->owned.get();
  }
  WriterMutexLock lock(segments_mu_);
  // Policy check under segments_mu_: EnableSharedScans sweeps the vector
  // under the same lock, so this push either observes its flag write or
  // happens first and is covered by its sweep — no segment is missed.
  if (shared_scans_.load(std::memory_order_relaxed)) {
    seg->table->EnableSharedScans(true);
  }
  segments_.push_back(std::move(seg));
}

std::shared_ptr<PartitionedTable::Segment>
PartitionedTable::AcquireTailForAppendLocked() {
  // The only fill read an appender may trust is one taken under the tail's
  // commit lock: a predecessor appender that entered that lock under an
  // EARLIER tail_mu_ hold (and has since released tail_mu_) may fill the
  // last slot while we wait on the lock, so the rollover pre-check below is
  // stale by the time the lock comes through. Re-check under the lock and
  // retry: the fill is monotone (appends only; deletes just invalidate), so
  // a full-under-lock read stays full, the retry's rollover takes it, and —
  // because tail_mu_ (held throughout) is the only gate to a tail commit
  // lock for appenders — the fresh tail cannot fill behind us: the loop
  // runs at most twice.
  for (;;) {
    RollOverIfFullLocked();
    std::shared_ptr<Segment> tail = TailLocked();
    tail->commit_mu.lock();
    if (tail->table->num_rows() < segment_capacity_) return tail;
    tail->commit_mu.unlock();
  }
}

uint64_t PartitionedTable::InsertRow(std::span<const uint64_t> keys) {
  // tail_mu_ covers only rollover + tail selection + commit-lock entry;
  // the append itself runs under the tail's commit lock alone, so inserts
  // overlap with commits into sealed segments. The returned tail has its
  // fill verified UNDER the commit lock (see AcquireTailForAppendLocked),
  // so the row cannot overflow the capacity.
  tail_mu_.lock();
  const std::shared_ptr<Segment> tail = AcquireTailForAppendLocked();
  AssertCommitHeld(*tail);
  tail_mu_.unlock();
  const uint64_t row = tail->table->InsertRow(keys);
  tail->commit_mu.unlock();
  return tail->base + row;
}

uint64_t PartitionedTable::InsertRows(std::span<const uint64_t> row_major_keys,
                                      uint64_t num_rows, TaskQueue* queue) {
  const size_t nc = schema_.columns.size();
  DM_CHECK_MSG(row_major_keys.size() == num_rows * nc,
               "batch size does not match row count x column count");
  // Sharing one queue between batch ingest and fan-out reads deadlocks:
  // the segment's InsertRows drains the queue while holding its exclusive
  // lock, and a concurrent reader's fan-out task needs that lock shared.
  DM_CHECK_MSG(queue == nullptr ||
                   queue != read_pool_.load(std::memory_order_acquire),
               "the batch queue must not be the attached read pool");
  MutexLock lock(tail_mu_);
  if (num_rows == 0) {
    const std::shared_ptr<Segment> tail = TailLocked();
    return tail->base + tail->table->num_rows();
  }
  uint64_t first = 0;
  bool first_set = false;
  uint64_t done = 0;
  while (done < num_rows) {
    RollOverIfFullLocked();
    const std::shared_ptr<Segment> tail = TailLocked();
    // The chunk appends under the tail's commit lock (the per-segment
    // append invariant); tail_mu_ stays held across the loop so the batch
    // remains one contiguous run of global row ids across rollovers.
    MutexLock commit_lock(tail->commit_mu);
    const uint64_t room = segment_capacity_ - tail->table->num_rows();
    if (room == 0) continue;  // pre-check was stale (a predecessor appender
                              // filled the tail while we waited on its
                              // commit lock); the re-run rollover sees the
                              // full segment and rolls over for real.
    const uint64_t n = std::min(room, num_rows - done);
    const uint64_t local =
        tail->table->InsertRows(row_major_keys.subspan(done * nc, n * nc), n,
                                queue);
    if (!first_set) {
      first = tail->base + local;
      first_set = true;
    }
    done += n;
  }
  return first;
}

uint64_t PartitionedTable::UpdateRow(uint64_t global_row,
                                     std::span<const uint64_t> keys) {
  // Like InsertRow, only a fill read taken under the tail's commit lock is
  // trustworthy — the rollover pre-check can go stale while we wait on a
  // predecessor appender holding that lock. Unlike InsertRow the routing
  // depends on the segment list (tail-owner vs cross-segment vs beyond-
  // size), and the cross-segment path must take the owner's commit lock
  // BEFORE the tail's (ascending order), so the re-check cannot be folded
  // into AcquireTailForAppendLocked: each retry releases every commit
  // lock, rolls over, and re-classifies from scratch — a tail-owner update
  // whose tail just sealed correctly re-routes to the cross-segment path.
  // The fill is monotone and tail_mu_ (held) gates all tail appenders, so
  // the loop runs at most twice.
  tail_mu_.lock();
  for (;;) {
    RollOverIfFullLocked();
    std::shared_ptr<Segment> tail;
    std::shared_ptr<Segment> old_seg;
    size_t num_segs;
    {
      ReaderMutexLock slock(segments_mu_);
      tail = segments_.back();
      num_segs = segments_.size();
      const size_t owner =
          static_cast<size_t>(global_row / segment_capacity_);
      if (owner + 1 < num_segs) old_seg = segments_[owner];
    }
    // Out-of-range targets are accepted exactly like Table::UpdateRow: the
    // fresh version is appended and nothing is invalidated. The live path
    // and WAL replay must agree on this, so the sharded front door must not
    // be stricter than the segment write path it logs through.
    const size_t owner = static_cast<size_t>(global_row / segment_capacity_);
    if (owner + 1 == num_segs) {
      // The superseded row lives in the open tail: the segment's own
      // insert-only update is one atomic operation (and, durably, ONE
      // kUpdate record — both halves recover or neither does).
      tail->commit_mu.lock();
      if (tail->table->num_rows() == segment_capacity_) {
        tail->commit_mu.unlock();
        continue;  // stale pre-check: re-roll and re-classify
      }
      tail_mu_.unlock();
      const uint64_t new_row =
          tail->table->UpdateRow(global_row - tail->base, keys);
      tail->commit_mu.unlock();
      return tail->base + new_row;
    }
    // Cross-segment (or out-of-range): commit locks ascending — the owner
    // (when it exists) is always below the tail — then release tail_mu_ so
    // disjoint writers proceed. Fresh version into the tail FIRST, then the
    // tombstone in the owning sealed segment — the same insert-then-
    // invalidate order a single-segment update applies, so a crash between
    // the halves leaves a state on the schedule's single-row-operation
    // prefix lattice, never an invented one (the recovery tests rely on
    // this order).
    if (old_seg == nullptr) {
      // Beyond-size target: liberal degrade to a plain tail insert.
      tail->commit_mu.lock();
      if (tail->table->num_rows() == segment_capacity_) {
        tail->commit_mu.unlock();
        continue;  // stale pre-check: re-roll and re-classify
      }
      tail_mu_.unlock();
      const uint64_t new_row = tail->base + tail->table->InsertRow(keys);
      tail->commit_mu.unlock();
      return new_row;
    }
    old_seg->commit_mu.lock();
    tail->commit_mu.lock();
    if (tail->table->num_rows() == segment_capacity_) {
      tail->commit_mu.unlock();
      old_seg->commit_mu.unlock();
      continue;  // stale pre-check: re-roll and re-classify
    }
    tail_mu_.unlock();
    const uint64_t new_row = tail->base + tail->table->InsertRow(keys);
    (void)old_seg->table->DeleteRow(global_row - old_seg->base);
    tail->commit_mu.unlock();
    old_seg->commit_mu.unlock();
    return new_row;
  }
}

Status PartitionedTable::DeleteRow(uint64_t global_row) {
  // Never touches tail_mu_: a tombstone in segment k only needs k's commit
  // lock, so deletes into sealed segments run concurrently with tail
  // ingest and with commits into other segments.
  const size_t owner = static_cast<size_t>(global_row / segment_capacity_);
  std::shared_ptr<Segment> seg;
  {
    ReaderMutexLock slock(segments_mu_);
    if (owner >= segments_.size()) {
      return Status::OutOfRange("row id beyond table size");
    }
    seg = segments_[owner];
  }
  MutexLock commit_lock(seg->commit_mu);
  return seg->table->DeleteRow(global_row - seg->base);
}

// ---------------------------------------------------------------------------
// Optimistic multi-row transactions
// ---------------------------------------------------------------------------

bool PartitionedTable::Transaction::ReadRowValid(uint64_t global_row) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  const bool valid = table_->IsRowValid(global_row);
  readset_.push_back(TxnRead{global_row, valid});
  return valid;
}

void PartitionedTable::Transaction::Insert(std::span<const uint64_t> keys) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  DM_CHECK_MSG(keys.size() == table_->num_columns(),
               "key count does not match column count");
  ops_.push_back(TxnOp{TxnOp::Kind::kInsert, 0,
                       std::vector<uint64_t>(keys.begin(), keys.end())});
}

void PartitionedTable::Transaction::Update(uint64_t global_row,
                                           std::span<const uint64_t> keys) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  DM_CHECK_MSG(keys.size() == table_->num_columns(),
               "key count does not match column count");
  ops_.push_back(TxnOp{TxnOp::Kind::kUpdate, global_row,
                       std::vector<uint64_t>(keys.begin(), keys.end())});
}

void PartitionedTable::Transaction::Delete(uint64_t global_row) {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  ops_.push_back(TxnOp{TxnOp::Kind::kDelete, global_row, {}});
}

void PartitionedTable::Transaction::Abort() {
  ops_.clear();
  readset_.clear();
  table_ = nullptr;
}

Status PartitionedTable::Transaction::Commit() {
  DM_CHECK_MSG(table_ != nullptr, "transaction already committed or aborted");
  PartitionedTable* table = table_;
  table_ = nullptr;  // consumed either way
  const Status st = table->CommitTxn(ops_, readset_);
  ops_.clear();
  readset_.clear();
  return st;
}

// --- SegmentCommitLockSet -------------------------------------------------

PartitionedTable::SegmentCommitLockSet::SegmentCommitLockSet(
    std::vector<std::shared_ptr<Segment>> segments)
    : segments_(std::move(segments)) {
  // DM_NO_THREAD_SAFETY_ANALYSIS: a vector of capabilities is
  // inexpressible to the analysis. The deadlock-freedom invariant —
  // ascending segment order — is checked here instead.
  for (size_t i = 0; i < segments_.size(); ++i) {
    DM_CHECK_MSG(i == 0 || segments_[i - 1]->base < segments_[i]->base,
                 "commit locks must be acquired in ascending segment order");
    segments_[i]->commit_mu.lock();
  }
}

PartitionedTable::SegmentCommitLockSet::~SegmentCommitLockSet() {
  for (size_t i = segments_.size(); i-- > 0;) {
    segments_[i]->commit_mu.unlock();
  }
}

void PartitionedTable::SegmentCommitLockSet::Add(
    std::shared_ptr<Segment> seg) {
  DM_CHECK_MSG(segments_.empty() || segments_.back()->base < seg->base,
               "commit locks must be acquired in ascending segment order");
  seg->commit_mu.lock();
  segments_.push_back(std::move(seg));
}

// --- commit decomposition -------------------------------------------------

namespace {

/// One per-segment run of a decomposed transaction, in buffer order.
struct OpGroup {
  size_t seg_index;
  std::vector<TxnOp> ops;  ///< target rows rebased to the segment
};

/// Decomposes a global-row op buffer into per-segment groups (contiguous
/// runs in buffer order, target rows rebased to the segment). The tail is
/// simulated from (tail_index, tail_rows) so inserts past the capacity
/// route to the segment a mid-commit rollover will create. Pure: the
/// caller supplies a fill read under the tail's commit lock, so the
/// simulation matches what the apply phase will do.
std::vector<OpGroup> BuildGroups(std::span<const TxnOp> ops,
                                 uint64_t segment_capacity, size_t tail_index,
                                 uint64_t tail_rows) {
  std::vector<OpGroup> groups;
  const auto route = [&groups](size_t seg_index) -> std::vector<TxnOp>& {
    if (groups.empty() || groups.back().seg_index != seg_index) {
      groups.push_back(OpGroup{seg_index, {}});
    }
    return groups.back().ops;
  };
  size_t sim_tail = tail_index;
  uint64_t sim_tail_rows = tail_rows;
  for (const TxnOp& op : ops) {
    switch (op.kind) {
      case TxnOp::Kind::kInsert:
      case TxnOp::Kind::kUpdate: {
        // Both append a fresh version to the (possibly rolled-over) tail.
        if (sim_tail_rows == segment_capacity) {
          ++sim_tail;
          sim_tail_rows = 0;
        }
        const size_t owner =
            static_cast<size_t>(op.target_row / segment_capacity);
        if (op.kind == TxnOp::Kind::kUpdate && owner == sim_tail) {
          // Superseded row lives in the open tail: the segment's own
          // insert-only update stays one atomic op inside its group.
          route(sim_tail).push_back(
              TxnOp{TxnOp::Kind::kUpdate,
                    op.target_row - sim_tail * segment_capacity, op.keys});
          ++sim_tail_rows;
          break;
        }
        const uint64_t sim_rows = sim_tail * segment_capacity + sim_tail_rows;
        route(sim_tail).push_back(TxnOp{TxnOp::Kind::kInsert, 0, op.keys});
        ++sim_tail_rows;
        if (op.kind == TxnOp::Kind::kUpdate && op.target_row < sim_rows) {
          // Cross-segment update: fresh version first (just routed), then
          // the tombstone in the owning segment — the same
          // insert-then-invalidate order the single-row path applies.
          route(owner).push_back(
              TxnOp{TxnOp::Kind::kDelete,
                    op.target_row - owner * segment_capacity, {}});
        }
        // An update whose target is beyond every (simulated) row degrades
        // to a plain insert — the liberal contract UpdateRow documents.
        break;
      }
      case TxnOp::Kind::kDelete: {
        const uint64_t sim_rows = sim_tail * segment_capacity + sim_tail_rows;
        if (op.target_row >= sim_rows) break;  // liberal no-op
        const size_t owner =
            static_cast<size_t>(op.target_row / segment_capacity);
        route(owner).push_back(
            TxnOp{TxnOp::Kind::kDelete,
                  op.target_row - owner * segment_capacity, {}});
        break;
      }
    }
  }
  return groups;
}

/// The segment indices a transaction's locks must cover before validation:
/// owners of every readset row and every update/delete target, clipped to
/// the segments that exist (`num_segments`). Ascending and deduplicated —
/// the acquisition order SegmentCommitLockSet enforces.
std::vector<size_t> TouchedSegments(std::span<const TxnOp> ops,
                                    std::span<const TxnRead> readset,
                                    uint64_t segment_capacity,
                                    size_t num_segments) {
  std::vector<size_t> indices;
  const auto add = [&](uint64_t global_row) {
    const size_t owner = static_cast<size_t>(global_row / segment_capacity);
    if (owner < num_segments) indices.push_back(owner);
  };
  for (const TxnRead& e : readset) add(e.row);
  for (const TxnOp& op : ops) {
    if (op.kind != TxnOp::Kind::kInsert) add(op.target_row);
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

}  // namespace

Status PartitionedTable::CommitSegmentGroupLocked(
    Segment& seg, std::span<const TxnOp> ops,
    std::span<const TxnRead> readset) {
  // One atomic Table-level step: validate + stamp + apply + journal under
  // a single exclusive acquisition of the segment's internal lock, as ONE
  // kTxnCommit record acknowledged through the group-commit boarding path
  // — committers of different segments acknowledge genuinely concurrently.
  return seg.table->CommitTxnOps(ops, readset);
}

Status PartitionedTable::CommitTxn(std::span<const TxnOp> ops,
                                   std::span<const TxnRead> readset) {
  // Classify at commit time: a transaction with no appends (deletes +
  // reads only) never needs the tail and never touches tail_mu_; an
  // append-bearing one coordinates rollover and tail selection through a
  // short tail_mu_ section and keeps it across the apply only when it
  // straddles a rollover.
  size_t appends = 0;
  for (const TxnOp& op : ops) {
    if (op.kind != TxnOp::Kind::kDelete) ++appends;
  }
  const Status st = appends == 0 ? CommitSealedOnlyTxn(ops, readset)
                                 : CommitAppendTxn(ops, readset, appends);
  if (st.ok()) {
    txn_commits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    txn_aborts_.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

Status PartitionedTable::CommitSealedOnlyTxn(std::span<const TxnOp> ops,
                                             std::span<const TxnRead> readset) {
  // Sealed-only shape (the tail may still be touched by a delete or a
  // readset row — then its commit lock joins the set like any other
  // owner's). No tail_mu_, so the segment list can grow between the
  // capture and the lock acquisition: re-capture after locking and extend
  // the set until it covers every touched owner that exists. New segments
  // only ever append at larger indices, so every extension stays ascending
  // and each round either finishes or locks at least one more of the
  // finitely many touched owners.
  SegmentCommitLockSet locks;
  std::vector<std::shared_ptr<Segment>> segs;
  for (;;) {
    segs = CaptureSegments();
    const std::vector<size_t> need =
        TouchedSegments(ops, readset, segment_capacity_, segs.size());
    bool extended = false;
    for (const size_t idx : need) {
      if (locks.segments().empty() ||
          segs[idx]->base > locks.segments().back()->base) {
        locks.Add(segs[idx]);
        extended = true;
      }
    }
    if (!extended) break;
  }
  const uint64_t tail_rows = segs.back()->table->num_rows();
  return CommitTxnLockedSet(ops, readset, /*appends=*/0, segs, &locks,
                            /*straddles=*/false, tail_rows);
}

Status PartitionedTable::CommitAppendTxn(std::span<const TxnOp> ops,
                                         std::span<const TxnRead> readset,
                                         size_t appends) {
  // Append-bearing: tail_mu_ freezes the segment list (rollover is its
  // only mutator), so one capture is authoritative. Acquire the commit
  // locks of every touched segment plus the tail, ascending (the tail is
  // always the maximum index).
  tail_mu_.lock();
  RollOverIfFullLocked();
  const std::vector<std::shared_ptr<Segment>> segs = CaptureSegments();
  std::vector<size_t> need =
      TouchedSegments(ops, readset, segment_capacity_, segs.size());
  if (need.empty() || need.back() != segs.size() - 1) {
    need.push_back(segs.size() - 1);
  }
  SegmentCommitLockSet locks;
  for (const size_t idx : need) locks.Add(segs[idx]);
  // The fill read under the tail's commit lock is frozen: every appender
  // holds that lock (a waiter who queued behind us at RollOverIfFullLocked
  // time may have filled the tail before our commit lock came through —
  // this read, not the rollover check, is what the classification trusts).
  const uint64_t tail_rows = segs.back()->table->num_rows();
  if (tail_rows + appends <= segment_capacity_) {
    // Fast path: the transaction fits the open tail, so no mid-commit
    // rollover can occur — release tail_mu_ before validate/apply and let
    // disjoint writers commit in parallel.
    tail_mu_.unlock();
    return CommitTxnLockedSet(ops, readset, appends, segs, &locks,
                              /*straddles=*/false, tail_rows);
  }
  // Straddling path: the commit spans a rollover, which must happen under
  // tail_mu_ — keep it for the whole apply (at most one commit per
  // segment_capacity fills pays this serialization).
  const Status st = CommitTxnLockedSet(ops, readset, appends, segs, &locks,
                                       /*straddles=*/true, tail_rows);
  tail_mu_.unlock();
  return st;
}

Status PartitionedTable::CommitTxnLockedSet(
    std::span<const TxnOp> ops, std::span<const TxnRead> readset,
    size_t appends, const std::vector<std::shared_ptr<Segment>>& segs,
    SegmentCommitLockSet* locks, bool straddles, uint64_t tail_rows) {
  // Readset rows whose owner segment does not exist serialize this
  // transaction BEFORE any transaction that creates them: the observation
  // must have been "invalid", and it holds at our serialization point
  // because the segment list was re-checked after every lock was taken
  // (sealed-only path) or is frozen under tail_mu_ (append paths).
  for (const TxnRead& e : readset) {
    const size_t owner = static_cast<size_t>(e.row / segment_capacity_);
    if (owner >= segs.size() && e.observed_valid) {
      return Status::Aborted("transaction readset conflict");
    }
  }

  // Single-segment classification: every op and every existing readset row
  // lands in ONE segment — validate + apply through that segment Table's
  // atomic CommitTxnOps, with rows rebased to its local domain. This is
  // the disjoint-writer fast path: nothing here touches any shared
  // PartitionedTable state.
  const std::vector<OpGroup> groups =
      BuildGroups(ops, segment_capacity_, segs.size() - 1, tail_rows);
  if (locks->segments().size() == 1 &&
      (groups.empty() ||
       (groups.size() == 1 && groups[0].seg_index < segs.size() &&
        segs[groups[0].seg_index].get() == locks->segments()[0].get()))) {
    Segment& seg = *locks->segments()[0];
    std::vector<TxnRead> local_reads;
    local_reads.reserve(readset.size());
    for (const TxnRead& e : readset) {
      const size_t owner = static_cast<size_t>(e.row / segment_capacity_);
      if (owner >= segs.size()) continue;  // validated above
      local_reads.push_back(TxnRead{e.row - seg.base, e.observed_valid});
    }
    AssertCommitHeld(seg);
    const std::span<const TxnOp> local_ops =
        groups.empty() ? std::span<const TxnOp>()
                       : std::span<const TxnOp>(groups[0].ops);
    return CommitSegmentGroupLocked(seg, local_ops, local_reads);
  }

  // Cross-segment: two-phase validate-then-install. Phase 1 validates each
  // involved segment's readset slice under its (held) commit lock; phase 2
  // installs the groups in buffer order with empty readsets — each as ONE
  // journaled kTxnCommit record, acknowledged before the next group
  // appends, so recovery can only tear at group boundaries (invariant 14).
  for (const std::shared_ptr<Segment>& seg : locks->segments()) {
    std::vector<TxnRead> local_reads;
    for (const TxnRead& e : readset) {
      const size_t owner = static_cast<size_t>(e.row / segment_capacity_);
      if (owner < segs.size() && segs[owner].get() == seg.get()) {
        local_reads.push_back(TxnRead{e.row - seg->base, e.observed_valid});
      }
    }
    if (!local_reads.empty() && !seg->table->ValidateReadset(local_reads)) {
      return Status::Aborted("transaction readset conflict");
    }
  }
  if (ops.empty()) return Status::OK();

  for (const OpGroup& group : groups) {
    std::shared_ptr<Segment> seg;
    if (group.seg_index < segs.size()) {
      seg = segs[group.seg_index];
    } else {
      // The simulation filled the previous tail exactly; materialize the
      // next segment (legal: the straddling path holds tail_mu_, and a
      // new segment's index exceeds every held lock, so adding it keeps
      // the acquisition order ascending). A transaction whose op buffer
      // revisits the rolled-over segment (insert, delete, insert) hits
      // this branch twice for the same index — materialization is
      // idempotent and locks each new segment exactly once.
      DM_CHECK_MSG(straddles && appends > 0,
                   "only a straddling commit can roll the tail over");
      seg = MaterializeTailForCommitLocked(group.seg_index, locks);
    }
    // A miss here would be an appender or tombstoner outside its lock —
    // TouchedSegments plus the tail covers every routed group by
    // construction; keep the invariant loud.
    DM_CHECK_MSG(locks->Holds(*seg),
                 "commit group outside the acquired lock set");
    AssertCommitHeld(*seg);
    const Status st = CommitSegmentGroupLocked(*seg, group.ops, {});
    DM_CHECK_MSG(st.ok(), "a readset-free group commit cannot abort");
  }
  return Status::OK();
}

std::shared_ptr<PartitionedTable::Segment>
PartitionedTable::MaterializeTailForCommitLocked(size_t seg_index,
                                                 SegmentCommitLockSet* locks) {
  RollOverIfFullLocked();
  std::shared_ptr<Segment> seg = SlotAt(seg_index);
  if (!locks->Holds(*seg)) locks->Add(seg);
  return seg;
}

uint64_t PartitionedTable::GetKey(size_t col, uint64_t global_row) const {
  const size_t owner = global_row / segment_capacity_;
  std::shared_ptr<Segment> seg;
  {
    ReaderMutexLock lock(segments_mu_);
    DM_CHECK_MSG(owner < segments_.size(), "global row id beyond table size");
    seg = segments_[owner];
  }
  const uint64_t local = global_row - seg->base;
  DM_CHECK_MSG(local < seg->table->num_rows(),
               "global row id beyond table size");
  return seg->table->GetKey(col, local);
}

bool PartitionedTable::IsRowValid(uint64_t global_row) const {
  const size_t owner = global_row / segment_capacity_;
  std::shared_ptr<Segment> seg;
  {
    ReaderMutexLock lock(segments_mu_);
    if (owner >= segments_.size()) return false;
    seg = segments_[owner];
  }
  return seg->table->IsRowValid(global_row - seg->base);
}

uint64_t PartitionedTable::CountEquals(size_t col, uint64_t key) const {
  return FanOutSum(
      [&](const Segment& s) { return s.table->CountEquals(col, key); });
}

uint64_t PartitionedTable::CountRange(size_t col, uint64_t lo,
                                      uint64_t hi) const {
  return FanOutSum(
      [&](const Segment& s) { return s.table->CountRange(col, lo, hi); });
}

uint64_t PartitionedTable::SumColumn(size_t col) const {
  return FanOutSum([&](const Segment& s) { return s.table->SumColumn(col); });
}

PartitionedSnapshot PartitionedTable::CreateSnapshot() const {
  PartitionedSnapshot out;
  // Atomic at logical-operation granularity: tail_mu_ excludes rollovers
  // and straddling commits, and holding EVERY segment's commit lock
  // excludes the commits that no longer serialize on tail_mu_ (fast-path
  // transactions, sealed-only transactions, bare deletes) — so no
  // cross-segment operation is mid-flight while the per-segment epochs
  // pin. tail_mu_ first, commit locks ascending: the global lock order.
  // Readers are unaffected (they take none of these locks), and
  // per-segment merge commits need no exclusion — each segment Snapshot
  // is commit-proof on its own.
  //
  // COST (deliberate, documented in the header and ARCHITECTURE.md):
  // capture blocks every writer for its duration, and that duration is
  // O(num_segments) lock acquisitions plus the drain of any in-flight
  // commit — including a single-row writer's group-commit fsync, which is
  // acknowledged under its segment's commit lock. The per-segment shared-
  // capture scheme this replaced (PR 5) was cheaper to create but could
  // interleave with the multi-segment commits PR 9 introduced, tearing a
  // cross-segment transaction in the capture. Snapshot-heavy workloads
  // should amortize: one capture serves any number of reads. Revisit with
  // per-segment epoch capture + a validation pass if capture latency ever
  // shows up in bench_sharded_scale's snapshot rows.
  MutexLock wlock(tail_mu_);
  SegmentCommitLockSet locks(CaptureSegments());
  out.segment_capacity_ = segment_capacity_;
  out.num_columns_ = schema_.columns.size();
  out.segments_.reserve(locks.segments().size());
  for (const auto& s : locks.segments()) {
    PartitionedSnapshot::SegmentView v;
    v.base = s->base;
    v.snap = s->table->CreateSnapshot();
    out.valid_rows_ += v.snap.valid_rows();
    out.segments_.push_back(std::move(v));
  }
  const PartitionedSnapshot::SegmentView& tail = out.segments_.back();
  out.visible_rows_ = tail.base + tail.snap.num_rows();
  return out;
}

PartitionedMergeReport PartitionedTable::MergeDueSegments(
    const MergeDaemonPolicy& policy, const TableMergeOptions& options,
    double tail_delta_rows_per_sec, std::atomic<bool>* merge_in_flight) {
  PartitionedMergeReport report;
  const std::vector<std::shared_ptr<Segment>> segs = CaptureSegments();
  for (const auto& seg : segs) {
    const bool sealed = seg->sealed.load(std::memory_order_acquire);
    if (sealed && seg->final_merged.load(std::memory_order_acquire)) {
      // Final-merged segments never merge again — but their journals keep
      // accumulating tombstone records from later deletes/updates of their
      // rows, and without re-checkpointing that backlog replays on every
      // reopen, forever. Evaluate the compaction trigger instead.
      CompactIfDue(*seg, policy, &report);
      continue;
    }
    bool is_final = false;
    if (sealed) {
      // A sealed segment never gains delta tuples again (only tombstones),
      // so any delta it still carries gets one final merge; a clean one is
      // marked delta-free without merging.
      if (seg->table->delta_rows() == 0) {
        seg->final_merged.store(true, std::memory_order_release);
        continue;
      }
      is_final = true;
    } else if (EvaluateMergeTrigger(*seg->table, policy, options.num_threads,
                                    tail_delta_rows_per_sec) ==
               MergeTrigger::kNone) {
      continue;
    }
    if (merge_in_flight != nullptr) {
      merge_in_flight->store(true, std::memory_order_release);
    }
    auto result = seg->table->Merge(options);
    if (merge_in_flight != nullptr) {
      merge_in_flight->store(false, std::memory_order_release);
    }
    if (!result.ok()) {  // segment merge already running; skip
      ++report.failed_merges;
      continue;
    }
    const TableMergeReport& r = result.ValueOrDie();
    report.table.stats.Accumulate(r.stats);
    report.table.wall_cycles += r.wall_cycles;
    report.table.rows_merged += r.rows_merged;
    report.max_segment_wall_cycles =
        std::max(report.max_segment_wall_cycles, r.wall_cycles);
    ++report.segments_merged;
    if (is_final && seg->table->delta_rows() == 0) {
      seg->final_merged.store(true, std::memory_order_release);
      ++report.final_merges;
    }
  }
  return report;
}

void PartitionedTable::CompactIfDue(Segment& seg,
                                    const MergeDaemonPolicy& policy,
                                    PartitionedMergeReport* report) {
  if (policy.compact_uncheckpointed_records == 0) return;  // disabled
  TableJournal* journal = seg.table->journal();
  if (journal == nullptr) return;  // in-memory segment: nothing to replay
  const uint64_t backlog = journal->UncheckpointedRecords();
  if (backlog < policy.compact_uncheckpointed_records) return;
  if (backlog <= seg.compact_failed_at.load(std::memory_order_acquire)) {
    return;  // already failed at this backlog; wait for it to grow
  }
  if (seg.table->CompactCheckpoint().ok()) {
    seg.compact_failed_at.store(0, std::memory_order_release);
    ++report->segments_compacted;
  } else {
    seg.compact_failed_at.store(backlog, std::memory_order_release);
    ++report->failed_compactions;
  }
}

PartitionedMergeReport PartitionedTable::MergeAll(
    const TableMergeOptions& options) {
  MergeDaemonPolicy everything;
  everything.delta_fraction = 0.0;
  everything.min_delta_rows = 1;
  everything.rate_lookahead = false;
  return MergeDueSegments(everything, options);
}

// ---------------------------------------------------------------------------
// PartitionedSnapshot
// ---------------------------------------------------------------------------

uint64_t PartitionedSnapshot::GetKey(size_t col, uint64_t global_row) const {
  DM_DCHECK(valid());
  DM_CHECK_MSG(global_row < visible_rows_, "row beyond the snapshot horizon");
  const size_t owner =
      static_cast<size_t>(global_row / segment_capacity_);
  const SegmentView& v = segments_[owner];
  return v.snap.GetKey(col, global_row - v.base);
}

bool PartitionedSnapshot::IsRowValid(uint64_t global_row) const {
  DM_DCHECK(valid());
  if (global_row >= visible_rows_) return false;
  const size_t owner =
      static_cast<size_t>(global_row / segment_capacity_);
  const SegmentView& v = segments_[owner];
  return v.snap.IsRowValid(global_row - v.base);
}

uint64_t PartitionedSnapshot::CountEquals(size_t col, uint64_t key) const {
  DM_DCHECK(valid());
  uint64_t n = 0;
  for (const SegmentView& v : segments_) n += v.snap.CountEquals(col, key);
  return n;
}

uint64_t PartitionedSnapshot::CountRange(size_t col, uint64_t lo,
                                         uint64_t hi) const {
  DM_DCHECK(valid());
  uint64_t n = 0;
  for (const SegmentView& v : segments_) n += v.snap.CountRange(col, lo, hi);
  return n;
}

uint64_t PartitionedSnapshot::SumColumn(size_t col) const {
  DM_DCHECK(valid());
  uint64_t sum = 0;
  for (const SegmentView& v : segments_) sum += v.snap.SumColumn(col);
  return sum;
}

std::vector<uint64_t> PartitionedSnapshot::CollectEquals(
    size_t col, uint64_t key, bool only_valid) const {
  DM_DCHECK(valid());
  std::vector<uint64_t> out;
  for (const SegmentView& v : segments_) {
    // Per-segment results are ascending and bases are increasing, so the
    // concatenation stays globally sorted.
    for (uint64_t local : v.snap.CollectEquals(col, key, only_valid)) {
      out.push_back(v.base + local);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// PartitionedMergeDaemon
// ---------------------------------------------------------------------------

PartitionedMergeDaemon::PartitionedMergeDaemon(PartitionedTable* table,
                                               MergeDaemonPolicy policy,
                                               TableMergeOptions options)
    : table_(table),
      policy_(policy),
      options_(options),
      poller_(policy.poll_interval_us, [this] { PollOnce(); }) {
  DM_CHECK(table != nullptr);
}

PartitionedMergeDaemon::~PartitionedMergeDaemon() { Stop(); }

void PartitionedMergeDaemon::Start() {
  MutexLock lock(lifecycle_mu_);
  if (poller_.running()) return;
  rate_.Reset(table_->tail_delta_rows());
  poller_.Start();
}

void PartitionedMergeDaemon::Stop() { poller_.Stop(); }

void PartitionedMergeDaemon::Nudge() { poller_.Nudge(); }

void PartitionedMergeDaemon::Pause() { poller_.Pause(); }

void PartitionedMergeDaemon::Resume() { poller_.Resume(); }

bool PartitionedMergeDaemon::paused() const { return poller_.paused(); }

PartitionedMergeDaemonStats PartitionedMergeDaemon::stats() const {
  MutexLock lock(stats_mu_);
  PartitionedMergeDaemonStats out = stats_;
  out.polls = poller_.polls();
  return out;
}

void PartitionedMergeDaemon::PollOnce() {
  // Tail-only arrival-rate estimate: O(1) in the segment count, where the
  // table-wide delta_rows() would lock and scan every segment on each
  // poll. (A just-sealed segment's still-unmerged delta is invisible to
  // the estimate for one rollover — it is merge work, not new arrival.)
  const double delta_rows_per_sec = rate_.Update(table_->tail_delta_rows());

  const PartitionedMergeReport report = table_->MergeDueSegments(
      policy_, options_, delta_rows_per_sec, &merge_in_flight_);

  {
    MutexLock lock(stats_mu_);
    if (report.segments_merged > 0) ++stats_.merge_passes;
    stats_.segments_merged += report.segments_merged;
    stats_.final_merges += report.final_merges;
    stats_.failed_merges += report.failed_merges;
    stats_.segments_compacted += report.segments_compacted;
    stats_.failed_compactions += report.failed_compactions;
    stats_.rows_merged += report.table.rows_merged;
    stats_.merge_wall_cycles += report.table.wall_cycles;
    stats_.max_segment_wall_cycles = std::max(
        stats_.max_segment_wall_cycles, report.max_segment_wall_cycles);
    stats_.merge.Accumulate(report.table.stats);
  }
  // Merges shrank the delta; re-anchor so the shrink is not read as zero
  // arrival next poll.
  if (report.segments_merged > 0) rate_.Rebase(table_->tail_delta_rows());
}

}  // namespace deltamerge
