// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/snapshot.h"

#include <algorithm>
#include <thread>

namespace deltamerge {

// ---------------------------------------------------------------------------
// EpochManager
// ---------------------------------------------------------------------------

EpochManager::~EpochManager() {
  DM_CHECK_MSG(pinned_count() == 0,
               "EpochManager destroyed with snapshots still pinned");
  // No readers left: everything retired is reclaimable.
  MutexLock lock(retired_mu_);
  reclaimed_total_.fetch_add(retired_.size(), std::memory_order_relaxed);
  retired_.clear();
}

uint32_t EpochManager::Pin() {
  for (;;) {
    const uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (uint32_t i = 0; i < kMaxPinnedSnapshots; ++i) {
      uint64_t expected = 0;
      if (slots_[i].epoch.compare_exchange_strong(
              expected, e, std::memory_order_seq_cst)) {
        return i;
      }
    }
    // All slots busy: wait for another snapshot to release.
    std::this_thread::yield();
  }
}

void EpochManager::Unpin(uint32_t slot) {
  DM_DCHECK(slot < kMaxPinnedSnapshots);
  DM_DCHECK(slots_[slot].epoch.load(std::memory_order_seq_cst) != 0);
  // Reset the read ts before freeing the slot so the next pinner starts in
  // the conservative "unknown" state — a pruner that sees the slot occupied
  // in between reads ts 0, which blocks pruning, never a stale value.
  slots_[slot].read_ts.store(0, std::memory_order_seq_cst);
  slots_[slot].epoch.store(0, std::memory_order_seq_cst);
}

void EpochManager::PublishPinnedReadTs(uint32_t slot, uint64_t read_ts) {
  DM_DCHECK(slot < kMaxPinnedSnapshots);
  slots_[slot].read_ts.store(read_ts, std::memory_order_seq_cst);
}

uint64_t EpochManager::MinPinnedReadTs() const {
  uint64_t min_ts = UINT64_MAX;
  for (const Slot& s : slots_) {
    if (s.epoch.load(std::memory_order_seq_cst) == 0) continue;
    const uint64_t ts = s.read_ts.load(std::memory_order_seq_cst);
    if (ts < min_ts) min_ts = ts;
  }
  return min_ts;
}

void EpochManager::EnsureClockAtLeast(uint64_t ts) {
  uint64_t cur = epoch_.load(std::memory_order_seq_cst);
  while (cur < ts &&
         !epoch_.compare_exchange_weak(cur, ts, std::memory_order_seq_cst)) {
  }
}

void EpochManager::Retire(std::shared_ptr<void> obj) {
  if (obj == nullptr) return;
  MutexLock lock(retired_mu_);
  // Tag with the epoch readers could have pinned, then advance the clock so
  // later pins are distinguishable from earlier ones.
  const uint64_t tag = epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.emplace_back(tag, std::move(obj));
}

size_t EpochManager::ReclaimExpired() {
  // The horizon must be read BEFORE the slot scan: an object retired after
  // the scan could carry a tag this scan's min does not account for (its
  // referencing reader may pin concurrently and be missed), but such a tag
  // is necessarily >= the horizon, so bounding the reclaim by both closes
  // the window.
  const uint64_t horizon = epoch_.load(std::memory_order_seq_cst);
  const uint64_t min_pinned = MinPinnedEpoch();
  const uint64_t limit = min_pinned < horizon ? min_pinned : horizon;
  std::vector<std::shared_ptr<void>> doomed;
  {
    MutexLock lock(retired_mu_);
    auto keep = retired_.begin();
    for (auto& entry : retired_) {
      if (entry.first < limit) {
        doomed.push_back(std::move(entry.second));
      } else {
        *keep++ = std::move(entry);
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Destruction happens outside the lock — partition destructors can be
  // arbitrarily expensive (freeing gigabytes of codes).
  reclaimed_total_.fetch_add(doomed.size(), std::memory_order_relaxed);
  return doomed.size();
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min_pinned = UINT64_MAX;
  for (const Slot& s : slots_) {
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_pinned) min_pinned = e;
  }
  return min_pinned;
}

uint32_t EpochManager::pinned_count() const {
  uint32_t n = 0;
  for (const Slot& s : slots_) {
    n += (s.epoch.load(std::memory_order_seq_cst) != 0) ? 1 : 0;
  }
  return n;
}

size_t EpochManager::retired_count() const {
  MutexLock lock(retired_mu_);
  return retired_.size();
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    epochs_ = other.epochs_;
    slot_ = other.slot_;
    pinned_epoch_ = other.pinned_epoch_;
    mu_ = other.mu_;
    validity_ = other.validity_;
    gate_ = other.gate_;
    visible_rows_ = other.visible_rows_;
    valid_rows_ = other.valid_rows_;
    read_ts_ = other.read_ts_;
    cols_ = std::move(other.cols_);
    other.epochs_ = nullptr;
  }
  return *this;
}

void Snapshot::Release() {
  if (epochs_ == nullptr) return;
  // Drop the view objects first — after Unpin their targets may be
  // reclaimed at any time.
  cols_.clear();
  EpochManager* epochs = epochs_;
  epochs_ = nullptr;
  epochs->Unpin(slot_);
  epochs->ReclaimExpired();
}

uint64_t Snapshot::GetKey(size_t col, uint64_t row) const {
  DM_DCHECK(valid());
  DM_CHECK_MSG(row < visible_rows_, "row beyond the snapshot horizon");
  const ColumnReadView& view = *cols_[col];
  if (row < view.pinned_rows()) return view.GetKeyPinned(row);
  ReaderMutexLock lock(*mu_);
  return view.GetKeyActive(row);
}

bool Snapshot::IsRowValid(uint64_t row) const {
  DM_DCHECK(valid());
  if (row >= visible_rows_) return false;
  ReaderMutexLock lock(*mu_);
  return validity_->IsValidAtTs(row, read_ts_);
}

uint64_t Snapshot::CountEquals(size_t col, uint64_t key) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  // With a gate, the main partition's share of the count enrolls in the
  // cooperative sweep (possibly riding a batch with concurrent queries);
  // the frozen share is a tree lookup either way.
  uint64_t n;
  if (gate_ != nullptr) {
    n = gate_->Count(col, view.MainEqualSpec(key)) +
        view.CountEqualsFrozen(key);
  } else {
    n = view.CountEqualsPinned(key);
  }
  if (view.active_prefix() > 0) {
    ReaderMutexLock lock(*mu_);
    n += view.CountEqualsActive(key);
  }
  return n;
}

uint64_t Snapshot::CountRange(size_t col, uint64_t lo, uint64_t hi) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  uint64_t n;
  if (gate_ != nullptr) {
    n = gate_->Count(col, view.MainRangeSpec(lo, hi)) +
        view.CountRangeFrozen(lo, hi);
  } else {
    n = view.CountRangePinned(lo, hi);
  }
  if (view.active_prefix() > 0) {
    ReaderMutexLock lock(*mu_);
    n += view.CountRangeActive(lo, hi);
  }
  return n;
}

uint64_t Snapshot::SumColumn(size_t col) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  uint64_t sum = view.SumPinned();
  if (view.active_prefix() > 0) {
    ReaderMutexLock lock(*mu_);
    sum += view.SumActive();
  }
  return sum;
}

std::vector<uint64_t> Snapshot::CollectEquals(size_t col, uint64_t key,
                                              bool only_valid) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  std::vector<uint64_t> rows;
  view.CollectEqualsPinned(key, &rows);
  if (view.active_prefix() > 0 || only_valid) {
    ReaderMutexLock lock(*mu_);
    if (view.active_prefix() > 0) view.CollectEqualsActive(key, &rows);
    if (only_valid) {
      // Explicit compaction instead of std::erase_if: the analysis treats a
      // lambda as a separate function that does not hold *mu_, so the
      // IsRowValidLocked call must stay in this (locked) scope.
      size_t kept = 0;
      for (const uint64_t r : rows) {
        if (IsRowValidLocked(r)) rows[kept++] = r;
      }
      rows.resize(kept);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

uint64_t Snapshot::CountEqualsValid(size_t col, uint64_t key) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  // One brief lock hold copies the validity bits as of read_ts and collects
  // the active-prefix matches; the pinned partitions (the bulk) then sweep
  // lock-free through the masked kernels.
  std::vector<uint64_t> mask;
  std::vector<uint64_t> active_rows;
  {
    ReaderMutexLock lock(*mu_);
    mask = validity_->CopyWordsAtTs(visible_rows_, read_ts_);
    if (view.active_prefix() > 0) view.CollectEqualsActive(key, &active_rows);
  }
  uint64_t n = view.CountEqualsPinnedValid(key, mask.data());
  for (const uint64_t r : active_rows) {
    n += simd::ValidBit(mask.data(), r) ? 1 : 0;
  }
  return n;
}

uint64_t Snapshot::CountRangeValid(size_t col, uint64_t lo,
                                   uint64_t hi) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  std::vector<uint64_t> mask;
  std::vector<uint64_t> active_rows;
  {
    ReaderMutexLock lock(*mu_);
    mask = validity_->CopyWordsAtTs(visible_rows_, read_ts_);
    if (view.active_prefix() > 0) {
      view.CollectRangeActive(lo, hi, &active_rows);
    }
  }
  uint64_t n = view.CountRangePinnedValid(lo, hi, mask.data());
  for (const uint64_t r : active_rows) {
    n += simd::ValidBit(mask.data(), r) ? 1 : 0;
  }
  return n;
}

uint64_t Snapshot::SumColumnValid(size_t col) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  std::vector<uint64_t> mask;
  uint64_t active_sum = 0;
  {
    ReaderMutexLock lock(*mu_);
    mask = validity_->CopyWordsAtTs(visible_rows_, read_ts_);
    // Active prefix is small by the merge discipline: point reads under the
    // same lock hold that copied the mask.
    for (uint64_t r = view.pinned_rows(); r < visible_rows_; ++r) {
      if (simd::ValidBit(mask.data(), r)) active_sum += view.GetKeyActive(r);
    }
  }
  return view.SumPinnedValid(mask.data()) + active_sum;
}

std::vector<uint64_t> Snapshot::CollectRange(size_t col, uint64_t lo,
                                             uint64_t hi,
                                             bool only_valid) const {
  DM_DCHECK(valid());
  const ColumnReadView& view = *cols_[col];
  std::vector<uint64_t> rows;
  view.CollectRangePinned(lo, hi, &rows);
  if (view.active_prefix() > 0 || only_valid) {
    ReaderMutexLock lock(*mu_);
    if (view.active_prefix() > 0) view.CollectRangeActive(lo, hi, &rows);
    if (only_valid) {
      size_t kept = 0;
      for (const uint64_t r : rows) {
        if (IsRowValidLocked(r)) rows[kept++] = r;
      }
      rows.resize(kept);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace deltamerge
