// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/merge_scheduler.h"

#include <chrono>

namespace deltamerge {

bool ShouldMerge(const Table& table, const MergeTriggerPolicy& policy) {
  const uint64_t nd = table.delta_rows();
  if (nd < policy.min_delta_rows) return false;
  const uint64_t nm =
      table.num_columns() == 0 ? 0 : table.column(0).main_size();
  return static_cast<double>(nd) >
         policy.delta_fraction * static_cast<double>(nm);
}

MergeScheduler::MergeScheduler(Table* table, MergeTriggerPolicy policy,
                               TableMergeOptions options)
    : table_(table),
      policy_(policy),
      options_(options),
      poller_(/*interval_us=*/1000, [this] { PollOnce(); }) {
  DM_CHECK(table != nullptr);
}

MergeScheduler::~MergeScheduler() { Stop(); }

void MergeScheduler::Start() { poller_.Start(); }

void MergeScheduler::Stop() { poller_.Stop(); }

void MergeScheduler::Nudge() { poller_.Nudge(); }

void MergeScheduler::Pause() { poller_.Pause(); }

void MergeScheduler::Resume() { poller_.Resume(); }

bool MergeScheduler::paused() const { return poller_.paused(); }

MergeStats MergeScheduler::stats() const {
  MutexLock lock(stats_mu_);
  return accumulated_;
}

void MergeScheduler::PollOnce() {
  if (!ShouldMerge(*table_, policy_)) return;

  auto result = table_->Merge(options_);
  if (!result.ok()) return;  // another merger won the race; retry later
  const TableMergeReport& report = result.ValueOrDie();
  {
    MutexLock lock(stats_mu_);
    accumulated_.Accumulate(report.stats);
  }
  merges_completed_.fetch_add(1, std::memory_order_relaxed);
  rows_merged_.fetch_add(report.rows_merged, std::memory_order_relaxed);
}

}  // namespace deltamerge
