// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/merge_scheduler.h"

#include <chrono>

namespace deltamerge {

bool ShouldMerge(const Table& table, const MergeTriggerPolicy& policy) {
  const uint64_t nd = table.delta_rows();
  if (nd < policy.min_delta_rows) return false;
  const uint64_t nm =
      table.num_columns() == 0 ? 0 : table.column(0).main_size();
  return static_cast<double>(nd) >
         policy.delta_fraction * static_cast<double>(nm);
}

MergeScheduler::MergeScheduler(Table* table, MergeTriggerPolicy policy,
                               TableMergeOptions options)
    : table_(table), policy_(policy), options_(options) {
  DM_CHECK(table != nullptr);
}

MergeScheduler::~MergeScheduler() { Stop(); }

void MergeScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void MergeScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  // Exactly one concurrent stopper joins; the rest wait for it here.
  {
    std::lock_guard<std::mutex> join_lock(join_mu_);
    if (thread_.joinable()) thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void MergeScheduler::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    nudged_ = true;  // makes the wait predicate true; notify alone would
                     // re-enter wait_for until the poll deadline
  }
  wake_.notify_all();
}

void MergeScheduler::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MergeScheduler::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    nudged_ = true;
  }
  wake_.notify_all();
}

bool MergeScheduler::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

MergeStats MergeScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accumulated_;
}

void MergeScheduler::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Poll at millisecond granularity; Nudge() short-circuits the wait.
      wake_.wait_for(lock, std::chrono::milliseconds(1),
                     [this] { return stop_requested_ || nudged_; });
      nudged_ = false;
      if (stop_requested_) return;
      if (paused_) continue;
    }
    if (!ShouldMerge(*table_, policy_)) continue;

    auto result = table_->Merge(options_);
    if (!result.ok()) continue;  // another merger won the race; retry later
    const TableMergeReport& report = result.ValueOrDie();
    {
      std::lock_guard<std::mutex> lock(mu_);
      accumulated_.Accumulate(report.stats);
    }
    merges_completed_.fetch_add(1, std::memory_order_relaxed);
    rows_merged_.fetch_add(report.rows_merged, std::memory_order_relaxed);
  }
}

}  // namespace deltamerge
