// Copyright (c) 2026 The DeltaMerge Authors.
// PartitionedTable: the §9 horizontal-partitioning extension.
//
// "The memory consumption of the merge process has to be tackled. Possible
// ideas include an incremental processing of the individual attributes ...
// Ideas from [3] could be taken further to directly include a horizontal
// partitioning strategy." (§9)
//
// The table is split into fixed-capacity horizontal segments, each a full
// Table (own main + delta per column). Inserts go to the open tail segment;
// a segment that reaches capacity is sealed, after which one final merge
// leaves it permanently delta-free. Consequences:
//
//   * merge working-set is bounded by the segment size, not the table size
//     (the §9 memory-consumption concern);
//   * merges are incremental — only the tail (plus newly sealed segments)
//     ever needs merging;
//   * queries fan out across segments and concatenate, with global row ids
//     = segment base + local row id.
//
// This trades slightly costlier reads (one dictionary per segment) for
// bounded, pause-friendly merges — quantified by bench_ablation_partitioning.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/merge_scheduler.h"
#include "core/merge_types.h"
#include "core/table.h"

namespace deltamerge {

class PartitionedTable {
 public:
  /// `segment_capacity` rows per horizontal segment (>= 1).
  PartitionedTable(Schema schema, uint64_t segment_capacity);

  DM_DISALLOW_COPY_AND_MOVE(PartitionedTable);

  size_t num_columns() const { return schema_.columns.size(); }
  size_t num_segments() const;
  uint64_t num_rows() const;
  uint64_t segment_capacity() const { return segment_capacity_; }

  /// Appends a row to the open tail segment (sealing and rolling over as
  /// needed). Returns the global row id.
  uint64_t InsertRow(std::span<const uint64_t> keys);
  uint64_t InsertRow(std::initializer_list<uint64_t> keys) {
    return InsertRow(std::span<const uint64_t>(keys.begin(), keys.size()));
  }

  // --- reads (fan out across segments) ---
  uint64_t GetKey(size_t col, uint64_t global_row) const;
  uint64_t CountEquals(size_t col, uint64_t key) const;
  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const;
  uint64_t SumColumn(size_t col) const;

  /// Total un-merged rows across all segments.
  uint64_t delta_rows() const;

  /// Merges every segment whose delta exceeds `policy` — typically only the
  /// tail plus any just-sealed segment. Each segment merge is a full
  /// (bounded-size) table merge. Returns accumulated stats.
  TableMergeReport MergeDueSegments(const MergeTriggerPolicy& policy,
                                    const TableMergeOptions& options);

  /// Merges everything, regardless of policy.
  TableMergeReport MergeAll(const TableMergeOptions& options);

  /// Direct access for tests/benches.
  Table& segment(size_t i) { return *segments_[i]; }
  const Table& segment(size_t i) const { return *segments_[i]; }

 private:
  void RollOverIfFullLocked();

  Schema schema_;
  const uint64_t segment_capacity_;
  mutable std::mutex mu_;  // guards the segment vector (not row data)
  std::vector<std::unique_ptr<Table>> segments_;
};

}  // namespace deltamerge
