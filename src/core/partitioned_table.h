// Copyright (c) 2026 The DeltaMerge Authors.
// PartitionedTable: the §9 horizontal-partitioning extension, promoted to
// the production write/read front door.
//
// "The memory consumption of the merge process has to be tackled. Possible
// ideas include an incremental processing of the individual attributes ...
// Ideas from [3] could be taken further to directly include a horizontal
// partitioning strategy." (§9)
//
// The table is split into fixed-capacity horizontal segments, each a full
// Table (own main + delta per column). Inserts go to the open tail segment;
// a segment that reaches capacity is sealed at the next write, after which
// one final merge leaves it permanently delta-free — sealed segments never
// receive new rows (updates route their fresh version to the tail), only
// tombstones, which live in the validity bitmap and add no delta tuples.
// Consequences:
//
//   * merge working-set is bounded by the segment size, not the table size
//     (the §9 memory-consumption concern);
//   * merges are incremental — only the tail (plus newly sealed segments)
//     ever needs merging;
//   * queries fan out across segments and concatenate, with global row ids
//     = segment base + local row id (bases are multiples of the capacity,
//     because a segment seals at exactly its capacity).
//
// Concurrency model (the locks are deliberately split; full protocol in
// docs/ARCHITECTURE.md "Per-segment parallel commits"):
//
//   * `tail_mu_`   — the tail-coordination lock: covers rollover and
//     tail-segment selection only (a short critical section), plus snapshot
//     capture. It is NOT held across whole commits — disjoint-segment
//     writers commit fully in parallel. Readers NEVER take it, so
//     sealed-segment scans never contend with ingest.
//   * `Segment::commit_mu` — one commit lock per segment. Every append to
//     and every validity mutation of a segment's Table, and every
//     commit-time readset validation against it, happens under that
//     segment's commit lock. A writer acquires the commit locks of exactly
//     the segments its operation touches, in ascending segment order (so
//     two cross-segment committers can never deadlock); holding them from
//     validation through apply is strict two-phase locking over segments,
//     which is what keeps parallel commits serializable.
//   * `segments_mu_` (shared) — guards only the segment vector. Readers
//     hold it briefly to capture the segment list, then scan entirely
//     lock-free at this level (each segment Table applies its own internal
//     reader/writer protocol). Only a rollover — once per
//     `segment_capacity` rows — takes it exclusively, for one push_back.
//
// Lock order: tail_mu_ -> commit_mu (ascending segment index) ->
// segments_mu_; each segment Table's internal mu_ is a leaf acquired only
// inside Table methods.
//
// Cross-segment consistency: point-in-time reads use PartitionedSnapshot,
// which pins one epoch capture per segment *atomically with the segment
// list* (under the write lock, so no logical operation is mid-flight).
// The plain fan-out aggregates (CountEquals & co.) are per-segment
// consistent only — same contract as Table's non-snapshot reads.
//
// This trades slightly costlier reads (one dictionary per segment) for
// bounded, pause-friendly merges — quantified by bench_ablation_partitioning
// and bench_sharded_scale.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/merge_daemon.h"
#include "core/merge_types.h"
#include "core/snapshot.h"
#include "core/table.h"
#include "parallel/task_queue.h"
#include "util/poll_thread.h"
#include "util/thread_annotations.h"

namespace deltamerge {

/// Consistent cross-segment point-in-time view: one epoch-pinned Snapshot
/// per segment, all captured atomically with the segment list and with no
/// write operation mid-flight. Reads compose per-segment answers with the
/// global-row-id arithmetic baked in; like Snapshot, the handle must be
/// released (destroyed) before the table it came from.
class PartitionedSnapshot {
 public:
  PartitionedSnapshot() = default;

  PartitionedSnapshot(PartitionedSnapshot&&) noexcept = default;
  PartitionedSnapshot& operator=(PartitionedSnapshot&&) noexcept = default;
  DM_DISALLOW_COPY(PartitionedSnapshot);

  bool valid() const { return !segments_.empty(); }
  void Release() { segments_.clear(); }

  // --- shape (captured; no lock needed) ---
  uint64_t num_rows() const { return visible_rows_; }
  uint64_t valid_rows() const { return valid_rows_; }
  size_t num_segments() const { return segments_.size(); }
  size_t num_columns() const { return num_columns_; }

  // --- reads (consistent as of the capture instant) ---
  uint64_t GetKey(size_t col, uint64_t global_row) const;
  bool IsRowValid(uint64_t global_row) const;
  uint64_t CountEquals(size_t col, uint64_t key) const;
  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const;
  uint64_t SumColumn(size_t col) const;
  /// Global row ids (ascending) whose value equals `key`.
  std::vector<uint64_t> CollectEquals(size_t col, uint64_t key,
                                      bool only_valid) const;

 private:
  friend class PartitionedTable;

  struct SegmentView {
    Snapshot snap;
    uint64_t base = 0;
  };

  std::vector<SegmentView> segments_;
  uint64_t segment_capacity_ = 1;
  uint64_t visible_rows_ = 0;
  uint64_t valid_rows_ = 0;
  size_t num_columns_ = 0;
};

/// Accumulated outcome of a partitioned merge pass.
struct PartitionedMergeReport {
  TableMergeReport table;       ///< stats/rows/wall summed over segments
  uint64_t segments_merged = 0;
  /// Sealed segments whose final merge completed this pass — they are
  /// permanently delta-free from here on and never re-merge.
  uint64_t final_merges = 0;
  uint64_t failed_merges = 0;   ///< lost the race to a concurrent merger
  /// Worst single-segment merge wall time — the §9 "merge pause" bound,
  /// which must track the segment capacity, not the table size.
  uint64_t max_segment_wall_cycles = 0;
  /// Sealed segments whose tombstone backlog crossed the policy threshold
  /// and got a validity-only compaction checkpoint this pass.
  uint64_t segments_compacted = 0;
  uint64_t failed_compactions = 0;  ///< checkpoint write failed (backoff)
};

class PartitionedTable {
 public:
  /// Hooks for an owner that manages segment storage (the durable wrapper).
  /// A null hook set means plain in-memory segments.
  class SegmentHooks {
   public:
    virtual ~SegmentHooks() = default;

    /// Creates backing storage for segment `index` and returns its Table.
    /// The hook implementor owns the returned table and must keep it alive
    /// for the PartitionedTable's lifetime. Called from the rollover path
    /// with the write lock held; a durable implementation must have the new
    /// segment installed durably (manifest) before returning, so no write
    /// can be acknowledged into a segment a crash would forget.
    virtual Table* CreateSegment(size_t index) = 0;
  };

  /// A segment recovered by the durable wrapper before construction.
  struct RecoveredSegment {
    Table* table = nullptr;
    bool sealed = false;
  };

  /// `segment_capacity` rows per horizontal segment (>= 1).
  PartitionedTable(Schema schema, uint64_t segment_capacity)
      : PartitionedTable(std::move(schema), segment_capacity, nullptr, {}) {}

  /// Durable-wrapper constructor: segments come from `recovered` (tables
  /// owned by the hooks implementor; the last one is the tail) and future
  /// rollovers call `hooks->CreateSegment`. With an empty `recovered` list
  /// the first segment is created through the hooks immediately.
  PartitionedTable(Schema schema, uint64_t segment_capacity,
                   SegmentHooks* hooks,
                   std::span<const RecoveredSegment> recovered);

  DM_DISALLOW_COPY_AND_MOVE(PartitionedTable);

  size_t num_columns() const { return schema_.columns.size(); }
  const Schema& schema() const { return schema_; }
  size_t num_segments() const DM_EXCLUDES(segments_mu_);
  uint64_t num_rows() const DM_EXCLUDES(segments_mu_);
  uint64_t valid_rows() const DM_EXCLUDES(segments_mu_);
  uint64_t segment_capacity() const { return segment_capacity_; }

  /// Fans aggregate reads out across segments on `pool` (caller-owned,
  /// outliving every read; may be null to scan serially). The pointer is
  /// published atomically, so attaching mid-traffic is safe — in-flight
  /// reads simply finish in whichever mode they started. The pool must be
  /// dedicated to reads: passing the same queue to InsertRows would let a
  /// batch writer (holding a segment's exclusive lock inside the queue's
  /// drain) wait on reader tasks that need that lock shared — a deadlock
  /// InsertRows checks against.
  void AttachReadPool(TaskQueue* pool) {
    read_pool_.store(pool, std::memory_order_release);
  }

  /// Enables (or disables) cooperative scan sharing on every current
  /// segment and on segments created by future rollovers. See
  /// Table::EnableSharedScans for the per-segment semantics.
  void EnableSharedScans(bool on) DM_EXCLUDES(segments_mu_);
  /// ScanGate counters summed over the current segments.
  query::ScanGate::Stats shared_scan_stats() const
      DM_EXCLUDES(segments_mu_);

  // --- write path (tail selection under tail_mu_; the write itself under
  //     the owning segments' commit locks, so disjoint-segment writers
  //     proceed in parallel) ---

  /// Appends a row to the open tail segment (sealing and rolling over as
  /// needed). Returns the global row id.
  uint64_t InsertRow(std::span<const uint64_t> keys)
      DM_EXCLUDES(tail_mu_, segments_mu_);
  uint64_t InsertRow(std::initializer_list<uint64_t> keys) {
    return InsertRow(std::span<const uint64_t>(keys.begin(), keys.size()));
  }

  /// Batch ingest into the tail, split at segment boundaries: each chunk
  /// rides the segment Table's column-parallel (and, when durable, batch-
  /// logged) InsertRows path. Returns the first global row id.
  uint64_t InsertRows(std::span<const uint64_t> row_major_keys,
                      uint64_t num_rows, TaskQueue* queue = nullptr)
      DM_EXCLUDES(tail_mu_, segments_mu_);

  /// Insert-only update routed by global row id: the fresh version is
  /// appended to the tail segment and the superseded row is invalidated in
  /// whichever segment owns it. Returns the new global row id.
  uint64_t UpdateRow(uint64_t global_row, std::span<const uint64_t> keys)
      DM_EXCLUDES(tail_mu_, segments_mu_);
  uint64_t UpdateRow(uint64_t global_row,
                     std::initializer_list<uint64_t> keys) {
    return UpdateRow(global_row,
                     std::span<const uint64_t>(keys.begin(), keys.size()));
  }

  /// Invalidates a row in its owning segment.
  Status DeleteRow(uint64_t global_row) DM_EXCLUDES(tail_mu_, segments_mu_);

  // --- optimistic multi-row transactions (global-row domain) ---
  //
  // The partitioned sibling of Table::Transaction: writes buffer locally,
  // the readset validates at commit under the commit locks of exactly the
  // segments the transaction touches (ascending order; see the lock-order
  // header comment), and the op buffer is decomposed into per-segment
  // groups applied in buffer order — inserts route to the tail (rolling
  // over mid-commit when it fills), an update whose superseded row lives in
  // another segment becomes a tail insert plus an owner tombstone, and each
  // group commits through the segment Table's atomic validate/apply
  // (CommitTxnOps), i.e. as ONE kTxnCommit record in that segment's
  // journal, acknowledged before the next group appends. Transactions over
  // disjoint segment sets commit fully in parallel; only tail rollover and
  // tail selection serialize on the short tail_mu_ critical section.
  //
  // Atomicity contract: a transaction whose ops land in one segment is
  // all-or-nothing across crash/recovery exactly like Table's; a
  // cross-segment transaction can only tear at group boundaries — an
  // unacknowledged suffix of groups may vanish, never a partial group and
  // never an invented op. (With sync=every-commit every acknowledged
  // transaction recovers whole, because the last group's Acknowledge
  // returns only after all its groups are durable.)

  class Transaction {
   public:
    Transaction() = default;
    Transaction(Transaction&&) = default;
    Transaction& operator=(Transaction&&) = default;
    DM_DISALLOW_COPY(Transaction);

    bool open() const { return table_ != nullptr; }
    size_t num_ops() const { return ops_.size(); }

    /// Reads a global row's current validity AND records the observation;
    /// commit aborts if it no longer holds (read-then-update yields
    /// first-updater-wins).
    bool ReadRowValid(uint64_t global_row);

    /// Buffers an insert; keys.size() must equal the table's column count.
    void Insert(std::span<const uint64_t> keys);
    void Insert(std::initializer_list<uint64_t> keys) {
      Insert(std::span<const uint64_t>(keys.begin(), keys.size()));
    }
    /// Buffers an insert-only update of `global_row`.
    void Update(uint64_t global_row, std::span<const uint64_t> keys);
    void Update(uint64_t global_row, std::initializer_list<uint64_t> keys) {
      Update(global_row,
             std::span<const uint64_t>(keys.begin(), keys.size()));
    }
    /// Buffers a delete of `global_row`.
    void Delete(uint64_t global_row);

    /// Validates the readset and applies + journals the buffer as
    /// per-segment groups. Returns Status::Aborted on a readset conflict
    /// (nothing applied anywhere). The handle is consumed either way.
    Status Commit();

    /// Discards the buffered ops; the handle is consumed.
    void Abort();

   private:
    friend class PartitionedTable;
    explicit Transaction(PartitionedTable* table) : table_(table) {}

    PartitionedTable* table_ = nullptr;
    std::vector<TxnOp> ops_;  ///< target_row in the global domain
    std::vector<TxnRead> readset_;  ///< row in the global domain
  };

  /// Opens a transaction. Any number may be open concurrently (they hold
  /// no lock); commits over disjoint segment sets run in parallel.
  Transaction BeginTransaction() { return Transaction(this); }

  /// Partitioned-transaction commits/aborts since construction (the
  /// per-segment counters additionally count one commit per group, and a
  /// single-segment transaction's abort also lands on its segment — the
  /// fast path validates inside the segment Table).
  Table::TxnStats txn_stats() const {
    return Table::TxnStats{txn_commits_.load(std::memory_order_relaxed),
                           txn_aborts_.load(std::memory_order_relaxed)};
  }

  // --- reads (fan out across segments, lock-free at this level) ---
  uint64_t GetKey(size_t col, uint64_t global_row) const
      DM_EXCLUDES(segments_mu_);
  bool IsRowValid(uint64_t global_row) const DM_EXCLUDES(segments_mu_);
  uint64_t CountEquals(size_t col, uint64_t key) const
      DM_EXCLUDES(segments_mu_);
  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const
      DM_EXCLUDES(segments_mu_);
  uint64_t SumColumn(size_t col) const DM_EXCLUDES(segments_mu_);

  /// Pins one epoch capture per segment atomically with the segment list
  /// (tail_mu_ plus every segment's commit lock, so no logical op is
  /// mid-flight): every read on the returned snapshot answers as of this
  /// instant, across concurrent inserts, rollovers, and per-segment merge
  /// commits. Capture blocks all writers for its duration, which is
  /// O(num_segments) lock acquisitions plus the drain of any in-flight
  /// commit (including its group-commit fsync) — cheap reads, deliberately
  /// non-cheap capture; snapshot-heavy workloads should reuse one capture
  /// across many reads (see the cost note in ARCHITECTURE.md).
  PartitionedSnapshot CreateSnapshot() const
      DM_EXCLUDES(tail_mu_, segments_mu_);

  /// Total un-merged rows across all segments.
  uint64_t delta_rows() const DM_EXCLUDES(segments_mu_);

  /// Un-merged rows of the open tail segment only — O(1) in the segment
  /// count, which is what the merge daemon polls every millisecond
  /// (sealed segments are delta-free after their final merge, so this is
  /// the whole table's delta in steady state).
  uint64_t tail_delta_rows() const DM_EXCLUDES(segments_mu_);

  /// One merge pass: a sealed segment with any delta gets its final merge
  /// (after which it is skipped forever); the open tail merges when the
  /// daemon trigger (§4 fill fraction, §9 cost budget, rate lookahead —
  /// `tail_delta_rows_per_sec` feeds the lookahead) says it is due.
  /// `merge_in_flight` (optional) is held true exactly while a segment
  /// merge body executes — not across trigger evaluation — so observers
  /// can classify overlap precisely.
  PartitionedMergeReport MergeDueSegments(
      const MergeDaemonPolicy& policy, const TableMergeOptions& options,
      double tail_delta_rows_per_sec = 0.0,
      std::atomic<bool>* merge_in_flight = nullptr);

  /// Merges every segment with a non-empty delta, regardless of policy.
  PartitionedMergeReport MergeAll(const TableMergeOptions& options);

  /// Direct access for tests/benches.
  Table& segment(size_t i) { return *SlotAt(i)->table; }
  const Table& segment(size_t i) const { return *SlotAt(i)->table; }
  bool segment_sealed(size_t i) const { return SlotAt(i)->sealed.load(); }
  bool segment_delta_free(size_t i) const {
    return SlotAt(i)->final_merged.load();
  }

 private:
  struct Segment {
    Table* table = nullptr;          ///< the segment (maybe hook-owned)
    std::unique_ptr<Table> owned;    ///< in-memory mode: owning pointer
    uint64_t base = 0;               ///< first global row id
    /// The segment's commit lock: every append to and every validity
    /// mutation of `table`, and every commit-time readset validation
    /// against it, holds this lock. Multi-segment operations acquire
    /// commit locks in ascending segment order (see the header comment);
    /// holding a segment's commit lock freezes its fill — no concurrent
    /// writer can append — which is what lets the tail fast path release
    /// tail_mu_ before applying.
    Mutex commit_mu;
    std::atomic<bool> sealed{false};
    /// Sealed AND delta-free: the final merge ran (or was never needed);
    /// merge passes skip the segment without touching its lock.
    std::atomic<bool> final_merged{false};
    /// Un-checkpointed-record backlog observed at the last *failed*
    /// compaction attempt: retry only once the backlog has grown past it.
    /// The rotation a compaction attempt performs appends no records, so
    /// without this a persistently failing checkpoint write would re-rotate
    /// the segment's WAL on every daemon poll.
    std::atomic<uint64_t> compact_failed_at{0};
  };

  /// RAII multi-lock over a set of segments: acquires each commit_mu in
  /// ascending segment order (callers pass a base-ascending, deduplicated
  /// list) and releases in reverse, keeping the shared_ptrs alive for the
  /// hold. A dynamic vector of capabilities is inexpressible to the
  /// analysis, so acquisition/release are opted out
  /// (DM_NO_THREAD_SAFETY_ANALYSIS); analysis coverage resumes at each
  /// apply site via AssertCommitHeld + the DM_REQUIRES on
  /// CommitSegmentGroupLocked.
  class SegmentCommitLockSet {
   public:
    SegmentCommitLockSet() = default;
    explicit SegmentCommitLockSet(
        std::vector<std::shared_ptr<Segment>> segments)
        DM_NO_THREAD_SAFETY_ANALYSIS;
    ~SegmentCommitLockSet() DM_NO_THREAD_SAFETY_ANALYSIS;
    DM_DISALLOW_COPY_AND_MOVE(SegmentCommitLockSet);

    /// Locks one more segment; its base must exceed every held one (the
    /// ascending-order rule) — how mid-commit rollovers and late-discovered
    /// readset owners join the set.
    void Add(std::shared_ptr<Segment> seg) DM_NO_THREAD_SAFETY_ANALYSIS;

    bool Holds(const Segment& seg) const {
      for (const auto& s : segments_) {
        if (s.get() == &seg) return true;
      }
      return false;
    }

    const std::vector<std::shared_ptr<Segment>>& segments() const {
      return segments_;
    }

   private:
    std::vector<std::shared_ptr<Segment>> segments_;
  };

  /// The partitioned commit body. Classifies the transaction at lock time:
  ///
  ///   * sealed-only (no appends): never touches tail_mu_ — acquire the
  ///     involved segments' commit locks ascending, validate, apply.
  ///   * append-bearing, fitting the tail: a short tail_mu_ section does
  ///     rollover + tail selection + commit-lock acquisition, then tail_mu_
  ///     is RELEASED before validate/apply (the held tail commit lock
  ///     freezes the fill, so no mid-commit rollover can be needed).
  ///   * append-bearing, straddling a rollover: tail_mu_ is kept for the
  ///     whole commit (at most once per segment_capacity fills) so the
  ///     mid-commit rollover stays inside the lock order.
  ///
  /// Validation + apply both run under the commit locks (strict 2PL over
  /// segments), so a validation that passes stays true for the entire
  /// apply. Single-segment transactions apply through the segment Table's
  /// atomic CommitTxnOps; cross-segment ones validate via per-segment
  /// ValidateReadset, then install readset-free groups in buffer order.
  Status CommitTxn(std::span<const TxnOp> ops,
                   std::span<const TxnRead> readset)
      DM_EXCLUDES(tail_mu_, segments_mu_);

  /// The no-append commit shape: acquire the touched segments' commit
  /// locks (extension loop — no tail_mu_, so the list is re-captured until
  /// it covers every touched owner that exists), then validate + apply.
  Status CommitSealedOnlyTxn(std::span<const TxnOp> ops,
                             std::span<const TxnRead> readset)
      DM_EXCLUDES(tail_mu_, segments_mu_);

  /// The append-bearing commit shape: short tail_mu_ section (rollover +
  /// capture + lock acquisition + frozen fill read), released before the
  /// apply when the transaction fits the open tail, kept across it when
  /// the commit straddles a rollover.
  Status CommitAppendTxn(std::span<const TxnOp> ops,
                         std::span<const TxnRead> readset, size_t appends)
      DM_EXCLUDES(segments_mu_);

  /// Validate-then-install under the already-acquired lock set (strict
  /// two-phase locking over segments: every lock is held from before
  /// validation to after the last group installs, so the validation
  /// outcome cannot go stale and parallel commits stay serializable).
  /// `straddles` callers hold tail_mu_ for the mid-commit rollover.
  /// DM_NO_THREAD_SAFETY_ANALYSIS: the lock set is dynamic and tail_mu_ is
  /// conditionally held — inexpressible; the per-segment teeth come back
  /// via AssertCommitHeld + CommitSegmentGroupLocked's DM_REQUIRES.
  Status CommitTxnLockedSet(std::span<const TxnOp> ops,
                            std::span<const TxnRead> readset, size_t appends,
                            const std::vector<std::shared_ptr<Segment>>& segs,
                            SegmentCommitLockSet* locks, bool straddles,
                            uint64_t tail_rows) DM_NO_THREAD_SAFETY_ANALYSIS;

  /// Straddling-commit rollover: materializes the segment a mid-commit
  /// rollover created in simulation and adds its commit lock to the set
  /// (a new segment's index exceeds every held one, so the acquisition
  /// order stays ascending). Idempotent: an op buffer that revisits the
  /// rolled-over segment resolves to the already-locked slot. Returns the
  /// segment at `seg_index`.
  std::shared_ptr<Segment> MaterializeTailForCommitLocked(
      size_t seg_index, SegmentCommitLockSet* locks) DM_REQUIRES(tail_mu_)
      DM_EXCLUDES(segments_mu_);

  /// Commits one decomposed op group (ops rebased to the segment's local
  /// row domain) through seg's Table::CommitTxnOps. The caller must hold
  /// seg.commit_mu — enforced by the analysis (the negative-compile case
  /// txn_commit_skips_segment_lock proves a call without the lock is
  /// rejected under -Werror=thread-safety). Returns Aborted only when
  /// `readset` is non-empty and stale (the single-segment fast path);
  /// readset-free groups cannot abort.
  static Status CommitSegmentGroupLocked(Segment& seg,
                                         std::span<const TxnOp> ops,
                                         std::span<const TxnRead> readset)
      DM_REQUIRES(seg.commit_mu);

  /// Escape hatch for lock sets the analysis cannot follow (a vector of
  /// segments locked by SegmentCommitLockSet): asserts at analysis level
  /// that `seg.commit_mu` is held so CommitSegmentGroupLocked may be
  /// called. Runtime-free; only ever invoked after the RAII set acquired
  /// the lock.
  static void AssertCommitHeld([[maybe_unused]] Segment& seg)
      DM_ASSERT_CAPABILITY(seg.commit_mu) {}

  /// Sealed-segment tombstone-compaction trigger, evaluated by a merge
  /// pass where the §4 fill trigger no longer applies (final-merged
  /// segments): when the segment journal's un-checkpointed backlog reaches
  /// the policy threshold, rewrite a validity-only checkpoint so its
  /// reopen replay stays bounded.
  static void CompactIfDue(Segment& seg, const MergeDaemonPolicy& policy,
                           PartitionedMergeReport* report);

  /// Seals the tail and opens a fresh segment if the tail is full. Caller
  /// holds tail_mu_ (which keeps the tail identity stable); the vector
  /// itself is still read/grown under segments_mu_.
  ///
  /// The fill read here is a PRE-check only: it runs before the tail's
  /// commit lock is taken, so a predecessor appender still holding that
  /// lock (acquired under an earlier tail_mu_ hold) can fill the last slot
  /// afterwards. Every append path must therefore re-validate the fill
  /// under the commit lock before appending — AcquireTailForAppendLocked
  /// for inserts, the retry loops in UpdateRow, the `room == 0` guard in
  /// InsertRows, and the frozen fill read in CommitAppendTxn.
  void RollOverIfFullLocked() DM_REQUIRES(tail_mu_) DM_EXCLUDES(segments_mu_);

  /// Rolls over as needed and returns the open tail with its commit_mu
  /// HELD and its fill verified < segment_capacity_ UNDER that lock (the
  /// only fill read an appender may trust — see RollOverIfFullLocked).
  /// Full-under-lock means a predecessor filled the tail while we waited:
  /// release, roll over, retry. The fill is monotone and tail_mu_ (held)
  /// gates every appender's path to a tail commit lock, so the fresh tail
  /// cannot fill behind us — the loop runs at most twice.
  /// DM_NO_THREAD_SAFETY_ANALYSIS: returns with a dynamically selected
  /// commit_mu held, which the analysis cannot express; callers re-enter
  /// the analysis via AssertCommitHeld on the returned segment.
  std::shared_ptr<Segment> AcquireTailForAppendLocked()
      DM_REQUIRES(tail_mu_) DM_EXCLUDES(segments_mu_)
      DM_NO_THREAD_SAFETY_ANALYSIS;

  /// The open tail segment. tail_mu_ (held) is what keeps the returned
  /// segment *the* tail until the caller's write completes.
  std::shared_ptr<Segment> TailLocked() const DM_REQUIRES(tail_mu_)
      DM_EXCLUDES(segments_mu_);

  /// Segment list capture: the shared-lock window is just the vector copy;
  /// scans run on the captured shared_ptrs with no PartitionedTable lock.
  std::vector<std::shared_ptr<Segment>> CaptureSegments() const
      DM_EXCLUDES(segments_mu_);

  std::shared_ptr<Segment> SlotAt(size_t i) const DM_EXCLUDES(segments_mu_);

  /// Fans `fn(segment) -> uint64_t` out over the captured segments on the
  /// attached read pool (serial without one) and sums the results.
  template <typename Fn>
  uint64_t FanOutSum(Fn&& fn) const;

  Schema schema_;
  const uint64_t segment_capacity_;
  SegmentHooks* hooks_ = nullptr;
  std::atomic<TaskQueue*> read_pool_{nullptr};
  /// Scan-sharing policy for segments created by future rollovers (current
  /// segments are toggled directly by EnableSharedScans).
  std::atomic<bool> shared_scans_{false};
  /// Whole-transaction outcomes (written under tail_mu_; atomics so the
  /// stats read needs no lock).
  std::atomic<uint64_t> txn_commits_{0};
  std::atomic<uint64_t> txn_aborts_{0};

  /// The tail-coordination lock: covers rollover + tail selection (and, on
  /// the straddling slow path, a whole commit), never taken by readers.
  /// Lock order: tail_mu_ -> Segment::commit_mu (ascending index) ->
  /// segments_mu_ — never acquire tail_mu_ while holding a commit lock or
  /// segments_mu_, never acquire a commit lock while holding segments_mu_.
  mutable Mutex tail_mu_ DM_ACQUIRED_BEFORE(segments_mu_);
  /// Guards segments_ (the vector only, not row data).
  mutable SharedMutex segments_mu_;
  std::vector<std::shared_ptr<Segment>> segments_ DM_GUARDED_BY(segments_mu_);
};

/// Running counters; retrieved atomically via PartitionedMergeDaemon::stats.
struct PartitionedMergeDaemonStats {
  uint64_t polls = 0;
  uint64_t merge_passes = 0;       ///< polls on which >= 1 segment merged
  uint64_t segments_merged = 0;
  uint64_t final_merges = 0;
  uint64_t failed_merges = 0;
  uint64_t segments_compacted = 0;   ///< validity-only checkpoint rewrites
  uint64_t failed_compactions = 0;
  uint64_t rows_merged = 0;
  uint64_t merge_wall_cycles = 0;
  uint64_t max_segment_wall_cycles = 0;
  MergeStats merge;
};

/// Background merge driver for a partitioned table: one watcher thread for
/// the whole table (segments are merged one at a time — the point of
/// partitioning is that each merge is bounded, not that merges overlap).
/// Each poll refreshes the tail arrival-rate estimate and runs
/// MergeDueSegments, which final-merges newly sealed segments and applies
/// the §4/§9 trigger stack to the tail. Reuses the MergeDaemon policy brain
/// (EvaluateMergeTrigger / ProjectedMergeSeconds).
class PartitionedMergeDaemon {
 public:
  PartitionedMergeDaemon(PartitionedTable* table, MergeDaemonPolicy policy,
                         TableMergeOptions options);
  ~PartitionedMergeDaemon();

  DM_DISALLOW_COPY_AND_MOVE(PartitionedMergeDaemon);

  void Start() DM_EXCLUDES(lifecycle_mu_);
  /// Stops the watcher; an in-flight merge pass completes first.
  void Stop();
  /// Wakes the watcher immediately (e.g. after a large batch insert).
  void Nudge();
  void Pause();
  void Resume();
  bool paused() const;

  /// True while a segment merge is executing.
  bool merge_in_flight() const {
    return merge_in_flight_.load(std::memory_order_acquire);
  }

  PartitionedMergeDaemonStats stats() const DM_EXCLUDES(stats_mu_);

 private:
  void PollOnce() DM_EXCLUDES(stats_mu_);

  PartitionedTable* table_;
  MergeDaemonPolicy policy_;
  TableMergeOptions options_;
  PollThread poller_;

  std::atomic<bool> merge_in_flight_{false};
  Mutex lifecycle_mu_;  ///< serializes Start() (rate-state reset)
  mutable Mutex stats_mu_;
  PartitionedMergeDaemonStats stats_ DM_GUARDED_BY(stats_mu_);

  /// Tail arrival-rate estimate (watcher thread only; shared machinery
  /// with MergeDaemon).
  DeltaRateEstimator rate_;
};

}  // namespace deltamerge
