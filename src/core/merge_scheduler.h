// Copyright (c) 2026 The DeltaMerge Authors.
// Merge scheduling. "In our system, we trigger the merging of partitions
// when the number of tuples N_D in the delta partition is greater than a
// certain pre-defined fraction of tuples in the main partition N_M" (§4).
// §3 sketches two strategies: (a) merge with all available resources, and
// (b) constantly merge in the background with minimal resources; the
// scheduler implements the trigger plus a background thread that can run
// either way (the thread count in the merge options is the resource knob).
//
// Note: this is the bare §4 trigger, kept for the ablation benches. New
// code should prefer core/merge_daemon.h, which adds the §9 cost-model and
// rate-lookahead policies plus per-trigger statistics.

#pragma once

#include <atomic>
#include <cstdint>

#include "core/merge_types.h"
#include "core/table.h"
#include "util/poll_thread.h"
#include "util/thread_annotations.h"

namespace deltamerge {

/// When to merge.
struct MergeTriggerPolicy {
  /// Merge once N_D > delta_fraction * N_M (§4's pre-defined fraction;
  /// the paper's Figure 9 experiment uses 1%).
  double delta_fraction = 0.01;
  /// Floor so freshly created tables don't merge on every insert.
  uint64_t min_delta_rows = 1024;
};

/// True if the policy says the table's delta is due for merging.
bool ShouldMerge(const Table& table, const MergeTriggerPolicy& policy);

/// Background merge driver for one table. Polls the trigger; when it fires,
/// runs Table::Merge with the configured options. Inserts and queries
/// continue during the merge (§3's online property); only the freeze and
/// commit instants take the table lock.
class MergeScheduler {
 public:
  MergeScheduler(Table* table, MergeTriggerPolicy policy,
                 TableMergeOptions options);
  ~MergeScheduler();

  DM_DISALLOW_COPY_AND_MOVE(MergeScheduler);

  void Start();
  /// Stops the poller; an in-flight merge completes first.
  void Stop();

  /// Wakes the poller immediately (e.g. after a large batch insert).
  void Nudge();

  /// Suspends merging without tearing the thread down (§3/§9: "a scheduling
  /// algorithm can detect a good point in time to start and even pause and
  /// resume the merge process"). An in-flight merge completes; no new merge
  /// starts until Resume().
  void Pause();
  void Resume();
  bool paused() const;

  uint64_t merges_completed() const {
    return merges_completed_.load(std::memory_order_relaxed);
  }
  uint64_t rows_merged() const {
    return rows_merged_.load(std::memory_order_relaxed);
  }

  /// Accumulated merge statistics (valid while no merge is running).
  MergeStats stats() const DM_EXCLUDES(stats_mu_);

 private:
  /// One poll tick: evaluate the §4 trigger, merge if due (poller_ body).
  void PollOnce() DM_EXCLUDES(stats_mu_);

  Table* table_;
  MergeTriggerPolicy policy_;
  TableMergeOptions options_;

  /// Shared poll-loop harness (see util/poll_thread.h) at the millisecond
  /// cadence the original hand-rolled loop used.
  PollThread poller_;

  mutable Mutex stats_mu_;
  std::atomic<uint64_t> merges_completed_{0};
  std::atomic<uint64_t> rows_merged_{0};
  MergeStats accumulated_ DM_GUARDED_BY(stats_mu_);
};

}  // namespace deltamerge
