// Copyright (c) 2026 The DeltaMerge Authors.
// Type-erased column handle. Tables mix columns of different value-lengths
// (§2's analysis: 2..399 columns per table, E_j in {4, 8, 16}); ColumnBase
// erases the width so Table can hold a heterogeneous vector, while
// ColumnHandle<W> carries the typed storage and dispatches to the templated
// merge and query code. Virtual dispatch appears only at per-operation
// granularity (a whole merge step, a whole scan), never per tuple.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/merge_algorithms.h"
#include "core/merge_types.h"
#include "core/snapshot.h"
#include "query/aggregate.h"
#include "query/lookup.h"
#include "query/range_select.h"
#include "storage/column.h"
#include "util/macros.h"

namespace deltamerge {

class ColumnBase {
 public:
  virtual ~ColumnBase() = default;

  // --- shape ---
  virtual size_t value_width() const = 0;
  virtual uint64_t size() const = 0;
  virtual uint64_t main_size() const = 0;
  virtual uint64_t delta_size() const = 0;
  virtual uint64_t frozen_size() const = 0;
  virtual uint64_t main_unique() const = 0;
  virtual uint64_t delta_unique() const = 0;
  virtual size_t memory_bytes() const = 0;

  // --- writes (row id comes from the table; values are ordering keys) ---
  virtual uint64_t InsertKey(uint64_t key) = 0;

  // --- reads ---
  /// The integer ordering key stored at `row` (across all partitions).
  virtual uint64_t GetKey(uint64_t row) const = 0;
  /// Tuples (all partitions) whose value key equals `key`.
  virtual uint64_t CountEqualsKey(uint64_t key) const = 0;
  /// Tuples (all partitions) whose value key lies in [lo, hi].
  virtual uint64_t CountRangeKeys(uint64_t lo, uint64_t hi) const = 0;
  /// Sum of value keys over all partitions (modulo 2^64 for convenience).
  virtual uint64_t SumKeys() const = 0;

  // --- snapshot reads ---
  /// Captures a consistent view of this column spanning the first
  /// `visible_rows` global rows. Must be called under the table lock (any
  /// mode); the view stays readable for as long as the caller's epoch pin
  /// keeps the captured partitions alive.
  virtual std::unique_ptr<ColumnReadView> CaptureView(
      uint64_t visible_rows) const = 0;

  // --- durability (checkpoint capture; see core/durability_hooks.h) ---
  /// A closure serializing the column's *current* main partition
  /// (dictionary + packed codes). Capture under the table lock; invoke
  /// while an epoch pinned at or before capture time is still held — the
  /// pin keeps the partition object alive across later merge commits.
  virtual std::function<Status(FileWriter&)> CaptureMainSerializer()
      const = 0;

  // --- merge protocol (driven by Table / MergeManager) ---
  virtual void FreezeDelta() = 0;
  /// Runs the merge of main + frozen into a staged main partition. Must be
  /// preceded by FreezeDelta(); safe without the table lock.
  virtual MergeStats PrepareMerge(const MergeOptions& options,
                                  ThreadTeam* team) = 0;
  /// Installs the staged partition. O(1); called under the table lock.
  /// Superseded partitions go to `retire` (for epoch-deferred reclamation)
  /// or are destroyed immediately when `retire` is null.
  virtual void CommitMerge(RetireSink* retire = nullptr) = 0;
  virtual void AbortMerge(RetireSink* retire = nullptr) = 0;
  virtual bool merge_in_progress() const = 0;
};

template <size_t W>
class ColumnHandle final : public ColumnBase {
 public:
  using Value = FixedValue<W>;

  ColumnHandle() = default;
  explicit ColumnHandle(Column<W> column) : column_(std::move(column)) {}

  Column<W>& column() { return column_; }
  const Column<W>& column() const { return column_; }

  size_t value_width() const override { return W; }
  uint64_t size() const override { return column_.size(); }
  uint64_t main_size() const override { return column_.main_size(); }
  uint64_t delta_size() const override { return column_.delta_size(); }
  uint64_t frozen_size() const override { return column_.frozen_size(); }
  uint64_t main_unique() const override {
    return column_.main().unique_values();
  }
  uint64_t delta_unique() const override {
    return column_.delta().unique_values();
  }
  size_t memory_bytes() const override { return column_.memory_bytes(); }

  uint64_t InsertKey(uint64_t key) override {
    return column_.Insert(Value::FromKey(key));
  }

  uint64_t GetKey(uint64_t row) const override {
    return column_.Get(row).key();
  }

  uint64_t CountEqualsKey(uint64_t key) const override {
    const Value v = Value::FromKey(key);
    uint64_t n = query::CountEqualsMain(column_.main(), v) +
                 query::CountEqualsDelta(column_.delta(), v);
    if (column_.frozen() != nullptr) {
      n += query::CountEqualsDelta(*column_.frozen(), v);
    }
    return n;
  }

  uint64_t CountRangeKeys(uint64_t lo, uint64_t hi) const override {
    const Value vlo = Value::FromKey(lo);
    const Value vhi = Value::FromKey(hi);
    uint64_t n = query::CountRangeMain(column_.main(), vlo, vhi) +
                 query::CountRangeDelta(column_.delta(), vlo, vhi);
    if (column_.frozen() != nullptr) {
      n += query::CountRangeDelta(*column_.frozen(), vlo, vhi);
    }
    return n;
  }

  uint64_t SumKeys() const override {
    // Truncated to 64 bits anyway, so the mod-2^64 translate-and-sum kernel
    // is exact here (query_test pins the equivalence with SumKeysMain).
    uint64_t sum =
        query::SumKeysMainMod64(column_.main(), 0, column_.main_size()) +
        static_cast<uint64_t>(query::SumKeysDelta(column_.delta()));
    if (column_.frozen() != nullptr) {
      sum += static_cast<uint64_t>(query::SumKeysDelta(*column_.frozen()));
    }
    return sum;
  }

  std::unique_ptr<ColumnReadView> CaptureView(
      uint64_t visible_rows) const override {
    const uint64_t pinned = column_.main_size() + column_.frozen_size();
    DM_CHECK_MSG(visible_rows >= pinned && visible_rows <= column_.size(),
                 "snapshot row count outside the column's bounds");
    return std::make_unique<ColumnSnapshotView<W>>(
        &column_.main(), column_.frozen(), &column_.delta(),
        visible_rows - pinned);
  }

  std::function<Status(FileWriter&)> CaptureMainSerializer() const override {
    const MainPartition<W>* main = &column_.main();
    return [main](FileWriter& out) { return main->Serialize(out); };
  }

  void FreezeDelta() override { column_.FreezeDelta(); }

  MergeStats PrepareMerge(const MergeOptions& options,
                          ThreadTeam* team) override {
    DM_CHECK_MSG(column_.merge_in_progress(),
                 "PrepareMerge requires FreezeDelta first");
    MergeStats stats;
    staged_ = MergeColumnPartitions<W>(column_.main(), *column_.frozen(),
                                       options, team, &stats);
    has_staged_ = true;
    return stats;
  }

  void CommitMerge(RetireSink* retire = nullptr) override {
    DM_CHECK_MSG(has_staged_, "CommitMerge without PrepareMerge");
    auto retired = column_.CommitMerge(std::move(staged_));
    if (retire != nullptr) {
      retire->Retire(std::shared_ptr<void>(std::move(retired.main)));
      retire->Retire(std::shared_ptr<void>(std::move(retired.frozen)));
    }
    staged_ = MainPartition<W>();
    has_staged_ = false;
  }

  void AbortMerge(RetireSink* retire = nullptr) override {
    auto retired = column_.AbortMerge();
    if (retire != nullptr) {
      retire->Retire(std::shared_ptr<void>(std::move(retired.frozen)));
      retire->Retire(std::shared_ptr<void>(std::move(retired.active)));
    }
    staged_ = MainPartition<W>();
    has_staged_ = false;
  }

  bool merge_in_progress() const override {
    return column_.merge_in_progress();
  }

 private:
  Column<W> column_;
  MainPartition<W> staged_;
  bool has_staged_ = false;
};

/// Factory for the supported widths.
std::unique_ptr<ColumnBase> MakeColumn(size_t value_width);

inline std::unique_ptr<ColumnBase> MakeColumn(size_t value_width) {
  switch (value_width) {
    case 4:
      return std::make_unique<ColumnHandle<4>>();
    case 8:
      return std::make_unique<ColumnHandle<8>>();
    case 16:
      return std::make_unique<ColumnHandle<16>>();
    default:
      DM_CHECK_MSG(false, "unsupported value width (use 4, 8 or 16)");
      return nullptr;
  }
}

/// Recovery inverse of ColumnBase::CaptureMainSerializer: reads one main
/// partition of the given width from a checkpoint stream and wraps it in a
/// fresh column (empty delta — the WAL tail repopulates it).
inline Result<std::unique_ptr<ColumnBase>> DeserializeColumnMain(
    size_t value_width, FileReader& in) {
  switch (value_width) {
    case 4: {
      DM_ASSIGN_OR_RETURN(MainPartition<4> m, MainPartition<4>::Deserialize(in));
      return std::unique_ptr<ColumnBase>(
          std::make_unique<ColumnHandle<4>>(Column<4>(std::move(m))));
    }
    case 8: {
      DM_ASSIGN_OR_RETURN(MainPartition<8> m, MainPartition<8>::Deserialize(in));
      return std::unique_ptr<ColumnBase>(
          std::make_unique<ColumnHandle<8>>(Column<8>(std::move(m))));
    }
    case 16: {
      DM_ASSIGN_OR_RETURN(MainPartition<16> m,
                          MainPartition<16>::Deserialize(in));
      return std::unique_ptr<ColumnBase>(
          std::make_unique<ColumnHandle<16>>(Column<16>(std::move(m))));
    }
    default:
      return Status::Internal("unsupported value width in checkpoint");
  }
}

}  // namespace deltamerge
