// Copyright (c) 2026 The DeltaMerge Authors.
// The seam between the in-memory engine (src/core) and the durability
// subsystem (src/persist): Table calls these hooks, persist implements them.
//
// The paper's architecture makes the split natural: updates only ever land
// in the write-optimized delta, so the delta is the durability frontier — a
// write-ahead record per mutation is all the logging the system needs — and
// the merge rebuilds the read-optimized main wholesale, which is exactly a
// checkpoint boundary (Larson et al. describe the same log-the-delta /
// checkpoint-the-snapshot split for main-memory stores). Core stays
// ignorant of files, fsync, and formats; it only promises ordering:
//
//   * Log* hooks are invoked under the table's exclusive lock, in mutation
//     order, *before* the in-memory mutation — the WAL sequence is the
//     authoritative serialization of the write history;
//   * Acknowledge(lsn) is invoked after the lock is released and must not
//     return until the record is durable per the configured sync policy —
//     the caller's write is "acknowledged" only after that;
//   * OnMergeFreezeLocked runs inside the merge's freeze critical section:
//     every record logged before it describes a row that the pending merge
//     will fold into the main (or a tombstone the checkpoint's validity
//     prefix will cover), every record after it belongs to the fresh active
//     delta. Its return value is the WAL position the matching checkpoint
//     replays from;
//   * OnMergeCommitted receives a CheckpointCapture of the newly installed
//     main generation, taken under the commit lock but *serialized with no
//     lock held* — an epoch pin (the PR 2 machinery) keeps the captured
//     partitions alive even if further merges commit meanwhile, so writers
//     and readers never stall on checkpoint I/O.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "util/file_io.h"
#include "util/status.h"

namespace deltamerge {

/// One buffered write inside an optimistic multi-row transaction
/// (Table::Transaction). Ops apply in buffer order at commit; an update or
/// delete may target a row id the same transaction created earlier (by then
/// the row exists). The trio mirrors the single-row write API exactly —
/// a transaction is N of these made atomic by one commit timestamp and one
/// WAL record.
struct TxnOp {
  enum class Kind : uint8_t {
    kInsert = 0,
    kUpdate = 1,
    kDelete = 2,
  };
  Kind kind = Kind::kInsert;
  uint64_t target_row = 0;     ///< update/delete: the row to invalidate
  std::vector<uint64_t> keys;  ///< insert/update: one key per column
};

/// Everything a checkpoint needs from the commit instant, decoupled from
/// the table lock: closures over the immutable new main partitions plus a
/// copy of the validity prefix they cover. Holds an epoch pin; destroying
/// (or Release()ing) the capture unpins and lets superseded generations
/// reclaim.
struct CheckpointCapture {
  struct ColumnMain {
    size_t value_width = 0;
    /// Schema name, persisted so recovery can refuse a same-shape but
    /// differently-named schema instead of silently reinterpreting bytes.
    std::string name;
    /// Serializes the captured main partition (dictionary + packed codes).
    /// Valid while the capture's epoch pin is held.
    std::function<Status(FileWriter&)> serialize;
  };

  /// WAL position this checkpoint replays from (the freeze instant).
  uint64_t replay_lsn = 0;
  /// Rows covered by the checkpoint (== every column's new main size).
  uint64_t main_rows = 0;
  uint64_t valid_main_rows = 0;
  /// Validity bits for rows [0, main_rows), captured at the *freeze*
  /// instant so they reflect exactly the records below replay_lsn —
  /// tombstones landing during the merge body belong to the replay tail
  /// (recovery applies them only if their records became durable).
  std::vector<uint64_t> validity_words;
  /// Per-row insert commit timestamps for rows [0, main_rows), captured at
  /// the same freeze instant as the validity words (the MVCC column of the
  /// covered prefix).
  std::vector<uint64_t> insert_ts;
  /// The commit clock as of the freeze instant — >= every timestamp in
  /// insert_ts. Recovery seeds the table's clock to at least this value so
  /// restored rows stay visible to post-restart snapshots.
  uint64_t commit_clock = 0;
  std::vector<ColumnMain> columns;

  CheckpointCapture() = default;
  ~CheckpointCapture() { Release(); }
  CheckpointCapture(CheckpointCapture&& other) noexcept {
    *this = std::move(other);
  }
  CheckpointCapture& operator=(CheckpointCapture&& other) noexcept {
    if (this != &other) {
      Release();
      replay_lsn = other.replay_lsn;
      main_rows = other.main_rows;
      valid_main_rows = other.valid_main_rows;
      validity_words = std::move(other.validity_words);
      insert_ts = std::move(other.insert_ts);
      commit_clock = other.commit_clock;
      columns = std::move(other.columns);
      epochs_ = other.epochs_;
      slot_ = other.slot_;
      other.epochs_ = nullptr;
    }
    return *this;
  }
  CheckpointCapture(const CheckpointCapture&) = delete;
  CheckpointCapture& operator=(const CheckpointCapture&) = delete;

  /// Drops the epoch pin (idempotent); call as soon as serialization is
  /// done so retired generations can reclaim.
  void Release() {
    if (epochs_ != nullptr) {
      epochs_->Unpin(slot_);
      epochs_->ReclaimExpired();
      epochs_ = nullptr;
    }
  }

  bool holds_pin() const { return epochs_ != nullptr; }

  /// Table installs the pin it took before the commit lock.
  void AdoptPin(EpochManager* epochs, uint32_t slot) {
    Release();
    epochs_ = epochs;
    slot_ = slot;
  }

 private:
  EpochManager* epochs_ = nullptr;
  uint32_t slot_ = 0;
};

/// A bulk-insert journal record encoded with NO lock held: the payload
/// bytes and their CRC are precomputed by PrepareInsertBatch so the locked
/// half of a batch insert (LogInsertBatch) is one buffered append — the
/// memcpy + checksum of a large batch never rides inside the table's
/// critical section.
struct PreparedBatch {
  std::vector<uint8_t> payload;
  uint32_t payload_crc = 0;
  uint64_t num_rows = 0;
};

/// The hook interface Table drives. Implemented by
/// persist::DurabilityManager; a null journal means a purely in-memory
/// table (the default, and the PR 2 behaviour).
class TableJournal {
 public:
  virtual ~TableJournal() = default;

  /// Write-path records (under the exclusive lock, pre-mutation). Each
  /// returns the record's log sequence number for Acknowledge.
  virtual uint64_t LogInsert(std::span<const uint64_t> keys) = 0;
  virtual uint64_t LogUpdate(uint64_t old_row,
                             std::span<const uint64_t> keys) = 0;
  virtual uint64_t LogDelete(uint64_t row) = 0;

  /// Encodes a row-major insert batch into one journal record. Called with
  /// NO lock held and must be thread-safe (no shared scratch state): this
  /// is where the serialization cost of a durable bulk ingest is paid, in
  /// parallel with other writers, not under the table lock.
  virtual PreparedBatch PrepareInsertBatch(
      std::span<const uint64_t> row_major_keys, uint64_t num_rows,
      uint64_t num_columns) const = 0;

  /// Logs a prepared batch (under the exclusive lock, pre-mutation) as ONE
  /// record covering batch.num_rows rows; returns its LSN — a single
  /// Acknowledge on it covers the whole batch, so group commit pays one
  /// fdatasync per batch instead of one per row.
  virtual uint64_t LogInsertBatch(const PreparedBatch& batch) = 0;

  /// Most keys (rows x columns) one batch record may carry. InsertRows
  /// chunks a larger bulk insert into several records — each record stays
  /// atomic, the chunk sequence recovers as an ordinary record prefix, and
  /// a record can never outgrow the log's frame-length field or replay's
  /// sanity cap on it. The default (8 MiB of keys) sits far below both.
  virtual uint64_t MaxBatchKeys() const { return uint64_t{1} << 20; }

  /// Encodes a whole transaction's op list into ONE journal record. Called
  /// with NO lock held and must be thread-safe, like PrepareInsertBatch —
  /// the commit's serialization cost is paid before (and regardless of)
  /// readset validation. A transaction is never chunked (that would break
  /// its atomicity); implementations must check the op list fits one
  /// record. Journals that predate transactions keep the failing default.
  virtual PreparedBatch PrepareTxnCommit(std::span<const TxnOp> ops,
                                         uint64_t num_columns) const {
    (void)ops;
    (void)num_columns;
    DM_CHECK_MSG(false, "this journal does not support transactions");
    return {};
  }

  /// Logs a prepared transaction (under the exclusive lock, post-validation,
  /// pre-mutation) as ONE record; returns its LSN. A single Acknowledge on
  /// it makes the whole transaction durable — and the frame CRC makes it
  /// atomic on replay: a torn commit record vanishes entirely, never
  /// applies an op prefix.
  virtual uint64_t LogTxnCommit(const PreparedBatch& txn) {
    (void)txn;
    DM_CHECK_MSG(false, "this journal does not support transactions");
    return 0;
  }

  /// Blocks until record `lsn` is durable per the sync policy (no lock
  /// held). sync=none returns immediately; sync=interval leaves a bounded
  /// loss window; sync=every-commit group-commits an fdatasync.
  virtual void Acknowledge(uint64_t lsn) = 0;

  /// Merge freeze instant (under the exclusive lock): the journal rotates
  /// to a fresh WAL segment and returns the LSN that cleanly partitions
  /// pre-freeze records (covered by the upcoming checkpoint) from
  /// post-freeze ones (the replay tail).
  virtual uint64_t OnMergeFreezeLocked() = 0;

  /// Merge commit completed (no lock held): write `capture` to a snapshot
  /// file and truncate the WAL to capture.replay_lsn. Failures must leave
  /// the previous checkpoint + full WAL intact.
  virtual void OnMergeCommitted(CheckpointCapture capture) = 0;

  /// Tombstone-compaction checkpoint for a sealed, delta-free table (no
  /// lock held): same install discipline as OnMergeCommitted — the capture
  /// re-serializes the *unchanged* final-merge main plus the current
  /// validity bits, so the tombstone records accumulated since the last
  /// checkpoint stop riding in the replay tail — but the outcome is
  /// reported, because no merge ran and the caller (the compaction
  /// trigger) must know whether to back off. Failures must leave the
  /// previous checkpoint + full WAL intact.
  virtual Status OnCompactionCheckpoint(CheckpointCapture capture) {
    OnMergeCommitted(std::move(capture));
    return Status::OK();
  }

  /// Journal records logged past the newest durably installed checkpoint —
  /// what a reopen would replay right now. The compaction trigger for
  /// sealed segments watches this count (their delta never grows again, so
  /// only this backlog measures their reopen cost). Thread-safe, lock-free
  /// (polled by the merge daemon every tick).
  virtual uint64_t UncheckpointedRecords() const { return 0; }
};

}  // namespace deltamerge
