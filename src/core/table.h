// Copyright (c) 2026 The DeltaMerge Authors.
// Table: N_C columns with aligned row ids, an insert-only write path, and
// the transactionally-safe online merge protocol of §3:
//
//   * updates are new inserts; deletes invalidate rows in a validity bitmap;
//   * the implicit tuple offset is valid for all attributes of the table;
//   * a merge freezes the deltas (brief exclusive lock), runs against the
//     frozen snapshot with no lock held while new writes land in the fresh
//     active deltas, and commits atomically (brief exclusive lock again).
//
// Concurrency model: single writer at a time (delta appends take the
// exclusive lock), arbitrarily many readers, and one merger. The merge body
// — the expensive part — runs entirely outside the lock.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/column_handle.h"
#include "core/durability_hooks.h"
#include "core/merge_types.h"
#include "core/snapshot.h"
#include "parallel/task_queue.h"
#include "parallel/thread_team.h"
#include "storage/validity.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace deltamerge {

/// Column declaration: a value width in bytes (4, 8, or 16) and a name.
struct ColumnSpec {
  size_t value_width = 8;
  std::string name;
};

/// Table schema: the ordered column declarations.
struct Schema {
  std::vector<ColumnSpec> columns;

  static Schema Uniform(size_t num_columns, size_t value_width) {
    Schema s;
    s.columns.resize(num_columns);
    for (size_t i = 0; i < num_columns; ++i) {
      s.columns[i].value_width = value_width;
      s.columns[i].name = "col" + std::to_string(i);
    }
    return s;
  }
};

/// One readset observation: `row`'s validity as the transaction saw it.
/// Commit-time validation re-checks the observation against the current
/// bitmap and aborts on a mismatch (first-updater-wins). Namespace-scope —
/// shared by Table::Transaction, PartitionedTable's per-segment commit
/// paths, and the validate/apply split (CommitTxnOps / ValidateReadset).
struct TxnRead {
  uint64_t row;
  bool observed_valid;
};

/// How a table-level merge distributes work over threads (§6.2.1):
/// kColumnTasks  — scheme (i): each column is a task on a shared queue; a
///                 column's merge itself runs single-threaded.
/// kIntraColumn  — scheme (ii): columns merge one after another, each merge
///                 parallelized internally (merge-path Step 1(b), chunked
///                 Step 2).
enum class MergeParallelism : uint8_t {
  kColumnTasks = 0,
  kIntraColumn = 1,
};

struct TableMergeOptions {
  MergeOptions merge;
  int num_threads = 1;
  MergeParallelism parallelism = MergeParallelism::kColumnTasks;

  /// Resource throttling (§3 strategy (b), §9): sleep this long between
  /// column merges so a background merge leaves headroom for foreground
  /// queries. 0 = merge with all available resources (§3 strategy (a)).
  /// Applies to the serial and intra-column paths (column-task merges are
  /// already interleaved by the queue).
  uint64_t inter_column_delay_us = 0;
};

/// Outcome of a table merge.
struct TableMergeReport {
  MergeStats stats;           ///< accumulated over all columns
  uint64_t wall_cycles = 0;   ///< end-to-end, including freeze/commit
  uint64_t rows_merged = 0;   ///< frozen-delta rows folded into main
};

class Table {
 public:
  explicit Table(Schema schema);
  ~Table();

  /// Assembles a table from pre-built columns (all the same row count);
  /// the fast path for workload builders. (Tables hold synchronization
  /// state and are therefore heap-allocated and pinned.)
  static std::unique_ptr<Table> FromColumns(
      Schema schema, std::vector<std::unique_ptr<ColumnBase>> columns);

  /// Same, but with an explicit validity vector (must span exactly the
  /// columns' row count) — the recovery path, where checkpointed rows are
  /// not all valid.
  static std::unique_ptr<Table> FromColumns(
      Schema schema, std::vector<std::unique_ptr<ColumnBase>> columns,
      ValidityVector validity);

  DM_DISALLOW_COPY_AND_MOVE(Table);

  // --- shape ---
  size_t num_columns() const { return columns_.size(); }
  uint64_t num_rows() const DM_EXCLUDES(mu_);
  uint64_t valid_rows() const DM_EXCLUDES(mu_);
  const Schema& schema() const { return schema_; }
  ColumnBase& column(size_t i) { return *columns_[i]; }
  const ColumnBase& column(size_t i) const { return *columns_[i]; }
  size_t memory_bytes() const DM_EXCLUDES(mu_);

  // --- write path (insert-only, §3) ---

  /// Appends a row; keys.size() must equal num_columns(). Returns the row id.
  uint64_t InsertRow(std::span<const uint64_t> keys) DM_EXCLUDES(mu_);
  uint64_t InsertRow(std::initializer_list<uint64_t> keys) {
    return InsertRow(std::span<const uint64_t>(keys.begin(), keys.size()));
  }

  /// Appends a batch of rows column-parallel: each column applies the whole
  /// batch as one task on `queue` (the delta-update parallelization of §7.2:
  /// "we parallelize over the different columns being updated"). With a null
  /// queue the batch applies serially. With a journal attached the batch is
  /// durable as ONE kInsertBatch WAL record — framed (memcpy + CRC) before
  /// the table lock is taken, applied atomically on recovery (a torn batch
  /// record vanishes entirely), acknowledged by a single group-committed
  /// sync covering every row.
  uint64_t InsertRows(std::span<const uint64_t> row_major_keys,
                      uint64_t num_rows, TaskQueue* queue = nullptr)
      DM_EXCLUDES(mu_);

  /// Insert-only update: writes the new version as a fresh row and
  /// invalidates the old one. Returns the new row id.
  uint64_t UpdateRow(uint64_t row, std::span<const uint64_t> keys)
      DM_EXCLUDES(mu_);
  uint64_t UpdateRow(uint64_t row, std::initializer_list<uint64_t> keys) {
    return UpdateRow(row,
                     std::span<const uint64_t>(keys.begin(), keys.size()));
  }

  /// Invalidates a row.
  Status DeleteRow(uint64_t row) DM_EXCLUDES(mu_);

  bool IsRowValid(uint64_t row) const DM_EXCLUDES(mu_);

  // --- optimistic multi-row transactions (Hekaton-style MVCC) ---
  //
  // A Transaction buffers writes locally (no lock, no WAL traffic) and
  // records a readset of (row, observed-validity) pairs. Commit takes the
  // exclusive lock once: it re-checks every readset entry against the
  // current validity bitmap, and on a mismatch aborts with Status::Aborted
  // — nothing was applied, nothing was logged. On success every op is
  // stamped with ONE fresh commit timestamp (AdvanceClock under the lock),
  // applied in buffer order, and journaled as ONE kTxnCommit WAL record —
  // so the transaction is atomic three ways: to concurrent snapshots (the
  // exclusive lock), in the timestamp history (one commit ts), and across
  // crash/recovery (one CRC'd record).
  //
  // Validation is readset-only (first-updater-wins is opted into by
  // reading a row's validity before updating it); the writes themselves
  // are liberal, mirroring the single-row API: an update whose target is
  // already invalid still appends the new version, a delete of a dead row
  // is a no-op. That keeps replay — which re-commits each logged
  // transaction with an empty readset — byte-identical to the live apply.

  class Transaction {
   public:
    Transaction() = default;
    ~Transaction() = default;
    Transaction(Transaction&&) = default;
    Transaction& operator=(Transaction&&) = default;
    DM_DISALLOW_COPY(Transaction);

    bool open() const { return table_ != nullptr; }
    /// The commit-clock value observed at begin (diagnostic).
    uint64_t begin_ts() const { return begin_ts_; }
    size_t num_ops() const { return ops_.size(); }

    /// Reads a row's current validity AND records it in the readset:
    /// commit aborts if the observation no longer holds. This is the
    /// conflict hook — read-then-update yields first-updater-wins.
    bool ReadRowValid(uint64_t row);

    /// Buffers an insert; keys.size() must equal the table's column count.
    void Insert(std::span<const uint64_t> keys);
    void Insert(std::initializer_list<uint64_t> keys) {
      Insert(std::span<const uint64_t>(keys.begin(), keys.size()));
    }
    /// Buffers an insert-only update of `row` (which may be a row this
    /// transaction created earlier: ops apply in buffer order).
    void Update(uint64_t row, std::span<const uint64_t> keys);
    void Update(uint64_t row, std::initializer_list<uint64_t> keys) {
      Update(row, std::span<const uint64_t>(keys.begin(), keys.size()));
    }
    /// Buffers a delete of `row`.
    void Delete(uint64_t row);

    /// Validates the readset and atomically applies + journals the op
    /// buffer. Returns Status::Aborted on a readset conflict (nothing
    /// applied). The handle is consumed either way.
    Status Commit();

    /// Discards the buffered ops; the handle is consumed.
    void Abort();

   private:
    friend class Table;
    explicit Transaction(Table* table, uint64_t begin_ts)
        : table_(table), begin_ts_(begin_ts) {}

    Table* table_ = nullptr;
    uint64_t begin_ts_ = 0;
    std::vector<TxnOp> ops_;
    std::vector<TxnRead> readset_;
  };

  /// Opens a transaction. Any number may be open concurrently (they hold
  /// no lock); commits serialize on the table's exclusive lock.
  Transaction BeginTransaction() DM_EXCLUDES(mu_);

  /// The validate/apply split, exposed directly: atomically validates
  /// `readset` against the current validity bitmap and, on success, stamps,
  /// applies, and journals `ops` as ONE transaction commit (one commit
  /// timestamp, one kTxnCommit record) — all under a single exclusive-lock
  /// acquisition. Returns Status::Aborted on a readset conflict (nothing
  /// applied, nothing logged). Transaction::Commit delegates here; the
  /// partitioned per-segment commit path drives it directly so a
  /// single-segment transaction is one atomic Table-level step with no
  /// intermediate Transaction buffering.
  Status CommitTxnOps(std::span<const TxnOp> ops,
                      std::span<const TxnRead> readset) DM_EXCLUDES(mu_);

  /// Validates `readset` only — one shared-lock acquisition, no writes, no
  /// journal traffic. Returns true iff every observation still holds. Used
  /// by cross-segment commits that hold the segment's external commit lock:
  /// validation here stays true for the duration of that hold, because
  /// every validity mutation of a partitioned segment goes through the
  /// same commit lock.
  bool ValidateReadset(std::span<const TxnRead> readset) const
      DM_EXCLUDES(mu_);

  /// Commits/aborts since construction (bench + test observability).
  struct TxnStats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
  };
  TxnStats txn_stats() const DM_EXCLUDES(mu_);

  // --- read path ---
  uint64_t GetKey(size_t col, uint64_t row) const DM_EXCLUDES(mu_);
  uint64_t CountEquals(size_t col, uint64_t key) const DM_EXCLUDES(mu_);
  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const
      DM_EXCLUDES(mu_);
  uint64_t SumColumn(size_t col) const DM_EXCLUDES(mu_);

  // --- snapshot reads (§3's online property, made precise) ---

  /// Pins the current epoch and captures a consistent view: every read on
  /// the returned Snapshot answers as of this instant, regardless of
  /// concurrent inserts, deletes, or merge commits. Cost: one slot CAS plus
  /// a per-column pointer capture under a brief shared lock. The snapshot
  /// must be released (destroyed) before the table is; partition
  /// generations a merge supersedes stay allocated until every snapshot
  /// pinned before the commit drains.
  Snapshot CreateSnapshot() const DM_EXCLUDES(mu_);

  /// The table's epoch/reclamation registry — exposed for the merge daemon
  /// and tests to observe retire/reclaim behaviour and to drive the
  /// column-level merge protocol directly.
  EpochManager& epoch_manager() const { return epochs_; }

  // --- cooperative scan sharing (query/shared_scan.h) ---
  /// When enabled, snapshots created afterwards enroll their main-partition
  /// CountEquals/CountRange sweeps at the table's ScanGate, batching
  /// compatible concurrent queries into one pass. Off by default (a solo
  /// query pays a small enrollment cost for no sharing win). Affects only
  /// snapshots created after the call; existing snapshots keep the policy
  /// they captured.
  void EnableSharedScans(bool on) {
    shared_scans_.store(on, std::memory_order_relaxed);
  }
  bool shared_scans_enabled() const {
    return shared_scans_.load(std::memory_order_relaxed);
  }
  query::ScanGate::Stats shared_scan_stats() const {
    return scan_gate_.stats();
  }

  /// One column's cardinalities, captured consistently under one lock
  /// acquisition — the merge daemon's trigger and cost projections must not
  /// read column state lock-free (writers mutate it under the exclusive
  /// lock).
  struct ColumnShape {
    uint64_t nm = 0;         ///< main tuples
    uint64_t nd_active = 0;  ///< active-delta tuples
    uint64_t nd_frozen = 0;  ///< frozen-delta tuples (mid-merge)
    uint64_t um = 0;         ///< |U_M|
    uint64_t ud = 0;         ///< |U_D| (active delta)
    size_t value_width = 8;
  };
  std::vector<ColumnShape> column_shapes() const DM_EXCLUDES(mu_);

  // --- merge ---

  /// Total tuples across all column deltas (the merge trigger input).
  uint64_t delta_rows() const DM_EXCLUDES(mu_);

  /// Runs the full online merge: freeze -> per-column merges -> commit.
  /// Returns an error if a merge is already in progress.
  Result<TableMergeReport> Merge(const TableMergeOptions& options)
      DM_EXCLUDES(mu_);

  /// Tombstone-compaction checkpoint: re-serializes the *unchanged* main
  /// plus the current validity bits into a fresh checkpoint, rotating the
  /// WAL at the capture instant — no merge work, no writer stall beyond
  /// the brief freeze-style lock. Legal only with a journal attached and
  /// an empty delta (the checkpoint format carries main partitions only;
  /// a delta row's record below the rotated replay LSN would be silently
  /// dropped by recovery) — i.e. for sealed segments after their final
  /// merge, where only tombstones ever arrive. Takes the merge slot for
  /// the capture, so it cannot interleave with a merge's freeze/commit.
  /// Returns the new checkpoint's replay LSN.
  Result<uint64_t> CompactCheckpoint() DM_EXCLUDES(mu_);

  // --- durability (optional; see core/durability_hooks.h, src/persist) ---

  /// Attaches (or, with nullptr, detaches) the write-ahead journal. Every
  /// subsequent mutation is logged through it before being applied and
  /// acknowledged only once durable per its sync policy; every merge commit
  /// hands it a checkpoint capture. Attach/detach only while no writer,
  /// reader, or merge is concurrently active (open/close time) — the hook
  /// pointer itself is then published by the table lock.
  void AttachJournal(TableJournal* journal) DM_EXCLUDES(mu_);
  TableJournal* journal() const DM_EXCLUDES(mu_);

  /// Cycles spent inside delta inserts since the last ResetCounters() — the
  /// T_U term of Eq. 1.
  uint64_t delta_update_cycles() const {
    return delta_update_cycles_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    delta_update_cycles_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Invalidation at commit timestamp `ts` under the exclusive lock +
  /// opportunistic tombstone-log prune (bounded by the oldest pinned
  /// snapshot's read timestamp; see validity.h).
  void InvalidateLocked(uint64_t row, uint64_t ts) DM_REQUIRES(mu_);

  /// The transaction commit body: readset validation, then stamp + apply +
  /// journal. Factored out so the lock requirement is explicit — calling
  /// it without the exclusive lock is a compile error under
  /// -Werror=thread-safety (tests/static_analysis proves it).
  Status CommitTxnLocked(std::span<const TxnOp> ops,
                         std::span<const TxnRead> readset,
                         const PreparedBatch* prepared, uint64_t* out_lsn)
      DM_REQUIRES(mu_);

  /// Builds the checkpoint capture for the merge that just committed
  /// (caller holds the exclusive lock and has already pinned an epoch).
  CheckpointCapture BuildCheckpointCaptureLocked(uint64_t replay_lsn) const
      DM_REQUIRES(mu_);

  Schema schema_;
  /// The vector itself is structurally fixed after construction (FromColumns
  /// swaps it in before the table is published); the *columns* it points to
  /// are mutated only under mu_ exclusive and scanned under mu_ shared or
  /// via epoch-pinned immutable views — a per-pointee convention the
  /// analysis cannot express on a vector of unique_ptrs, enforced by review.
  std::vector<std::unique_ptr<ColumnBase>> columns_;
  ValidityVector validity_ DM_GUARDED_BY(mu_);
  mutable SharedMutex mu_;
  mutable EpochManager epochs_;
  /// Cooperative scan gate (internally synchronized) + the opt-in flag
  /// consulted at snapshot creation.
  mutable query::ScanGate scan_gate_;
  std::atomic<bool> shared_scans_{false};
  TableJournal* journal_ DM_GUARDED_BY(mu_) = nullptr;
  uint64_t txn_commits_ DM_GUARDED_BY(mu_) = 0;
  uint64_t txn_aborts_ DM_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> delta_update_cycles_{0};
  std::atomic<bool> merge_running_{false};
};

}  // namespace deltamerge
