// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/merge_types.h"

#include <cstdio>

#include "util/cycle_clock.h"

namespace deltamerge {

std::string_view MergeAlgorithmToString(MergeAlgorithm algo) {
  switch (algo) {
    case MergeAlgorithm::kNaive:
      return "naive";
    case MergeAlgorithm::kLinear:
      return "linear";
  }
  return "unknown";
}

void MergeStats::Accumulate(const MergeStats& other) {
  cycles_step1a += other.cycles_step1a;
  cycles_step1b += other.cycles_step1b;
  cycles_step2 += other.cycles_step2;
  cycles_total += other.cycles_total;
  columns += other.columns;
  nm += other.nm;
  nd += other.nd;
  um += other.um;
  ud += other.ud;
  u_merged += other.u_merged;
  ec_bits_old += other.ec_bits_old;
  ec_bits_new += other.ec_bits_new;
}

namespace {
double PerTuple(uint64_t cycles, uint64_t tuples) {
  return tuples == 0 ? 0.0
                     : static_cast<double>(cycles) /
                           static_cast<double>(tuples);
}
}  // namespace

// nm/nd are summed across columns, so (nm + nd) is already
// tuples-times-columns; dividing total cycles by it yields the paper's
// per-tuple-per-column unit.
double MergeStats::CyclesPerTuple() const {
  return PerTuple(cycles_total, nm + nd);
}
double MergeStats::Step1aCyclesPerTuple() const {
  return PerTuple(cycles_step1a, nm + nd);
}
double MergeStats::Step1bCyclesPerTuple() const {
  return PerTuple(cycles_step1b, nm + nd);
}
double MergeStats::Step2CyclesPerTuple() const {
  return PerTuple(cycles_step2, nm + nd);
}

std::string MergeStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "MergeStats{cols=%llu, nm=%llu, nd=%llu, |U'|=%llu, "
                "cpt=%.2f (1a=%.2f, 1b=%.2f, 2=%.2f)}",
                static_cast<unsigned long long>(columns),
                static_cast<unsigned long long>(nm),
                static_cast<unsigned long long>(nd),
                static_cast<unsigned long long>(u_merged), CyclesPerTuple(),
                Step1aCyclesPerTuple(), Step1bCyclesPerTuple(),
                Step2CyclesPerTuple());
  return std::string(buf);
}

double UpdateCostReport::UpdatesPerSecond() const {
  const uint64_t cycles = cycles_delta_update + merge.cycles_total;
  if (cycles == 0) return 0.0;
  const double seconds = CycleClock::ToSeconds(cycles);
  return static_cast<double>(updates) / seconds;
}

double UpdateCostReport::UpdateDeltaCyclesPerTuple() const {
  const uint64_t tuples = merge.nm + merge.nd;
  return tuples == 0 ? 0.0
                     : static_cast<double>(cycles_delta_update) /
                           static_cast<double>(tuples);
}

double UpdateCostReport::TotalCyclesPerTuple() const {
  return UpdateDeltaCyclesPerTuple() + merge.CyclesPerTuple();
}

}  // namespace deltamerge
