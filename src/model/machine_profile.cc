// Copyright (c) 2026 The DeltaMerge Authors.

#include "model/machine_profile.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/cycle_clock.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace deltamerge {

MachineProfile MachineProfile::Paper() {
  MachineProfile m;
  m.frequency_hz = 3.3e9;
  m.stream_bytes_per_cycle = 7.0;   // ≈23 GB/s at 3.3 GHz (§7.4)
  m.random_bytes_per_cycle = 5.0;   // §7.4 gather micro-benchmark
  m.llc_bytes = 24.0 * 1024 * 1024; // §7.3: "actual cache size ... is 24 MB"
  m.cores = 6;
  m.ops_per_cycle_per_core = 1.0;
  return m;
}

MachineProfile MachineProfile::PaperTwoSocket() {
  MachineProfile m = Paper();
  m.stream_bytes_per_cycle *= 2;
  m.random_bytes_per_cycle *= 2;
  m.cores *= 2;
  return m;
}

std::string MachineProfile::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "MachineProfile{%.2f GHz, stream %.2f B/c, random %.2f B/c, "
                "LLC %.1f MB, %d cores}",
                frequency_hz / 1e9, stream_bytes_per_cycle,
                random_bytes_per_cycle, llc_bytes / (1024.0 * 1024.0), cores);
  return std::string(buf);
}

namespace {
// Defeats dead-code elimination of the benchmark loops' results.
volatile uint64_t g_bandwidth_sink = 0;
}  // namespace

double MeasureStreamBandwidth(size_t buffer_bytes, int threads) {
  const size_t words_total = buffer_bytes / 8;
  AlignedBuffer buffer(buffer_bytes);
  auto* data = buffer.As<uint64_t>();
  // Touch every page to fault the buffer in before timing.
  for (size_t i = 0; i < words_total; i += 512) data[i] = i;

  std::vector<uint64_t> sink(static_cast<size_t>(threads), 0);
  const uint64_t t0 = CycleClock::Now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const size_t begin = words_total * static_cast<size_t>(t) / threads;
      const size_t end =
          words_total * (static_cast<size_t>(t) + 1) / threads;
      uint64_t sum = 0;
      for (size_t i = begin; i < end; ++i) sum += data[i];
      sink[static_cast<size_t>(t)] = sum;
    });
  }
  for (auto& w : workers) w.join();
  const uint64_t cycles = CycleClock::Now() - t0;
  for (uint64_t s : sink) g_bandwidth_sink = g_bandwidth_sink + s;
  if (cycles == 0) return 0.0;
  return static_cast<double>(words_total * 8) / static_cast<double>(cycles);
}

double MeasureRandomGatherBandwidth(size_t buffer_bytes, int threads) {
  const size_t words_total = buffer_bytes / 8;
  AlignedBuffer buffer(buffer_bytes);
  auto* data = buffer.As<uint64_t>();
  for (size_t i = 0; i < words_total; i += 512) data[i] = i;

  // Independent (non-chained) gathers: measures bandwidth with the memory-
  // level parallelism the merge's Step 2 gathers actually get, not latency.
  constexpr size_t kGathers = 1 << 21;
  std::vector<uint64_t> sink(static_cast<size_t>(threads), 0);
  const uint64_t t0 = CycleClock::Now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0xfeedULL + static_cast<uint64_t>(t));
      uint64_t sum = 0;
      for (size_t i = 0; i < kGathers / static_cast<size_t>(threads); ++i) {
        sum += data[rng.Below(words_total)];
      }
      sink[static_cast<size_t>(t)] = sum;
    });
  }
  for (auto& w : workers) w.join();
  const uint64_t cycles = CycleClock::Now() - t0;
  for (uint64_t s : sink) g_bandwidth_sink = g_bandwidth_sink + s;
  if (cycles == 0) return 0.0;
  // Each gather transfers one cache line from memory.
  return static_cast<double>(kGathers * kCacheLineSize) /
         static_cast<double>(cycles);
}

uint64_t DetectLlcBytes(uint64_t fallback) {
  // Highest cache index present is the LLC.
  for (int index = 4; index >= 0; --index) {
    const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                             std::to_string(index) + "/size";
    std::ifstream in(path);
    if (!in.good()) continue;
    std::string text;
    in >> text;
    if (text.empty()) continue;
    uint64_t multiplier = 1;
    if (text.back() == 'K') multiplier = 1024;
    if (text.back() == 'M') multiplier = 1024 * 1024;
    if (multiplier != 1) text.pop_back();
    const uint64_t v = std::strtoull(text.c_str(), nullptr, 10);
    if (v != 0) return v * multiplier;
  }
  return fallback;
}

MachineProfile MachineProfile::Measure(int threads) {
  MachineProfile m;
  m.frequency_hz = CycleClock::FrequencyHz();
  constexpr size_t kBufferBytes = 256ull * 1024 * 1024;
  m.stream_bytes_per_cycle = MeasureStreamBandwidth(kBufferBytes, threads);
  m.random_bytes_per_cycle =
      MeasureRandomGatherBandwidth(kBufferBytes, threads);
  m.llc_bytes = static_cast<double>(DetectLlcBytes());
  m.cores = threads;
  m.ops_per_cycle_per_core = 1.0;
  return m;
}

}  // namespace deltamerge
