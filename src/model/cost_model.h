// Copyright (c) 2026 The DeltaMerge Authors.
// The analytical cost model of §6 / §7.4: memory traffic per merge step
// (Eqs. 8-15) and projected cycles-per-tuple given a MachineProfile.
//
// The model "defines upper bounds on the performance, if the implementation
// was indeed bandwidth bound (and a different bound if compute bound)";
// measured performance should match the lower of the two upper bounds —
// i.e. the *larger* projected time (§6.1). §7.4 instantiates it:
//
//   Step 1(a), 100% unique, N_M=100M, N_D=1M, E_j=8:
//       (4·8·1M / 7  +  (2·64+4)·1M / 5) / 101M           = 0.306 cpt
//   Step 2, aux uncached:  64/5 + (27/8)/7 + (2·27/8)/7   ≈ 14.2  cpt
//   Step 2, aux cached:    4 ops/6 cores + streams at 7    ≈ 1.73  cpt
//
// Unit tests reproduce these numbers exactly with MachineProfile::Paper().

#pragma once

#include <cstdint>
#include <string>

#include "model/machine_profile.h"

namespace deltamerge {

/// The input cardinalities of one column merge (Table 1's symbols).
struct MergeShape {
  uint64_t nm = 0;        ///< N_M: main tuples
  uint64_t nd = 0;        ///< N_D: delta tuples
  uint64_t um = 0;        ///< |U_M|
  uint64_t ud = 0;        ///< |U_D|
  uint64_t u_merged = 0;  ///< |U'_M|
  double ej = 8;          ///< E_j: uncompressed value bytes
  double ec_bits = 0;     ///< E_C: old code bits (ceil(log2 |U_M|))
  double ec_new_bits = 0; ///< E'_C: new code bits (ceil(log2 |U'_M|))
  double cache_line = 64; ///< L

  uint64_t total_tuples() const { return nm + nd; }

  /// Fills ec_bits / ec_new_bits from the cardinalities (Eq. 4) and returns
  /// the shape for chaining.
  MergeShape& DeriveCodeBits();

  /// Convenience constructor from experiment parameters: unique fractions
  /// are clamped to at least one distinct value. `overlap_free` dictionaries
  /// are assumed (uniform random values barely collide), so
  /// |U'_M| = |U_M| + |U_D| unless set explicitly.
  static MergeShape FromParameters(uint64_t nm, uint64_t nd,
                                   double unique_fraction_main,
                                   double unique_fraction_delta, double ej);
};

/// Memory traffic (bytes) split by access pattern.
struct Traffic {
  double stream_bytes = 0;
  double random_bytes = 0;

  Traffic& operator+=(const Traffic& o) {
    stream_bytes += o.stream_bytes;
    random_bytes += o.random_bytes;
    return *this;
  }
};

// --- the printed equations -------------------------------------------------

/// Eq. 8: Step 1(a) — tree traversal + dictionary write (streaming) plus the
/// per-tuple scatter of new codes into the delta ((2L+4)·N_D, random).
Traffic Step1aTraffic(const MergeShape& s);

/// Eq. 9: Step 1(b) read traffic (dictionaries in, write-allocate reads for
/// the outputs).
double Step1bReadBytes(const MergeShape& s);

/// Eq. 10: Step 1(b) write traffic (merged dictionary + auxiliary tables).
double Step1bWriteBytes(const MergeShape& s);

/// Eq. 15: extra traffic of the three-phase parallel Step 1(b) — the
/// dictionaries are read twice and the output dictionary written once more.
double Step1bParallelExtraBytes(const MergeShape& s);

/// Eq. 12: Step 2 gathers of the auxiliary structures when they exceed the
/// cache — one line per tuple.
double Step2AuxGatherBytes(const MergeShape& s);

/// Eq. 13: Step 2 streaming reads of the input code vectors.
double Step2PartitionReadBytes(const MergeShape& s);

/// Eq. 14: Step 2 streaming write (with write-allocate) of the output codes.
double Step2OutputWriteBytes(const MergeShape& s);

/// Bytes of the auxiliary translation tables X_M + X_D ((|U_M|+|U_D|)
/// entries of E'_C bits) — what must fit in cache for the fast Step 2 path.
double AuxiliaryStructureBytes(const MergeShape& s);

// --- projections (§7.4 methodology) ----------------------------------------

/// Instruction-count constants from the paper.
inline constexpr double kOpsPerDictMergeOutput = 12.0;  // §6.1, citing [5]
inline constexpr double kOpsPerStep2Tuple = 4.0;        // Eq. 18's "4/6"

struct CostProjection {
  double step1a_cpt = 0;
  double step1b_cpt = 0;
  double step2_cpt = 0;
  bool aux_fits_cache = false;
  bool step1b_compute_bound = false;

  double total_cpt() const { return step1a_cpt + step1b_cpt + step2_cpt; }
};

/// Projects per-step cycles per tuple (over N_M + N_D) for a merge of shape
/// `s` on machine `m` using `threads` workers. `parallel_step1b` adds
/// Eq. 15's extra traffic (it is what the three-phase algorithm costs; pass
/// threads > 1).
CostProjection ProjectMergeCost(const MergeShape& s, const MachineProfile& m,
                                int threads);

/// Eq. 1 / Eq. 16: updates per second for a table of `nc` columns given the
/// projected merge cost and a measured-or-projected delta-update cost.
double ProjectUpdateRate(const MergeShape& s, const MachineProfile& m,
                         int threads, uint64_t nc,
                         double delta_update_cpt);

std::string ToString(const CostProjection& p);

}  // namespace deltamerge
