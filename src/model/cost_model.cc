// Copyright (c) 2026 The DeltaMerge Authors.

#include "model/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/bit_util.h"
#include "util/macros.h"

namespace deltamerge {

MergeShape& MergeShape::DeriveCodeBits() {
  ec_bits = BitsForCardinality(um);
  ec_new_bits = BitsForCardinality(u_merged);
  return *this;
}

MergeShape MergeShape::FromParameters(uint64_t nm, uint64_t nd,
                                      double unique_fraction_main,
                                      double unique_fraction_delta,
                                      double ej) {
  MergeShape s;
  s.nm = nm;
  s.nd = nd;
  s.um = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(nm) *
                               unique_fraction_main));
  s.ud = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(nd) *
                               unique_fraction_delta));
  s.u_merged = s.um + s.ud;
  s.ej = ej;
  s.DeriveCodeBits();
  return s;
}

Traffic Step1aTraffic(const MergeShape& s) {
  Traffic t;
  // "4·E_j bytes per value (3·E_j bytes read and 1·E_j bytes written)" for
  // the tree traversal + dictionary write...
  t.stream_bytes = 4.0 * s.ej * static_cast<double>(s.ud);
  // ...plus "(2·L + 4) bytes per tuple (including the read for the write
  // component)" for the tuple-id driven scatter of new codes (Eq. 8).
  t.random_bytes =
      (2.0 * s.cache_line + 4.0) * static_cast<double>(s.nd);
  return t;
}

double Step1bReadBytes(const MergeShape& s) {
  // Eq. 9: E_j·(|U_M| + |U_D| + |U'_M|) + E'_C·(|X_M| + |X_D|)/8.
  // The |U'_M| and auxiliary terms are the write-allocate reads of the
  // output streams.
  return s.ej * static_cast<double>(s.um + s.ud + s.u_merged) +
         s.ec_new_bits * static_cast<double>(s.um + s.ud) / 8.0;
}

double Step1bWriteBytes(const MergeShape& s) {
  // Eq. 10: E_j·|U'_M| + E'_C·(|X_M| + |X_D|)/8.
  return s.ej * static_cast<double>(s.u_merged) +
         s.ec_new_bits * static_cast<double>(s.um + s.ud) / 8.0;
}

double Step1bParallelExtraBytes(const MergeShape& s) {
  // Eq. 15: E_j·(|U_M| + |U_D|) + 2·E_j·|U'_M| — phase 1 re-reads both
  // dictionaries; phase 3 writes the output once more (write + allocate).
  return s.ej * static_cast<double>(s.um + s.ud) +
         2.0 * s.ej * static_cast<double>(s.u_merged);
}

double Step2AuxGatherBytes(const MergeShape& s) {
  // Eq. 12: L·(N_M + N_D) — every tuple's translation gather can touch a
  // fresh cache line when X does not fit on die.
  return s.cache_line * static_cast<double>(s.nm + s.nd);
}

double Step2PartitionReadBytes(const MergeShape& s) {
  // Eq. 13: E_C·(N_M + N_D)/8.
  return s.ec_bits * static_cast<double>(s.nm + s.nd) / 8.0;
}

double Step2OutputWriteBytes(const MergeShape& s) {
  // Eq. 14: 2·E'_C·(N_M + N_D)/8 (write + write-allocate read).
  return 2.0 * s.ec_new_bits * static_cast<double>(s.nm + s.nd) / 8.0;
}

double AuxiliaryStructureBytes(const MergeShape& s) {
  return s.ec_new_bits * static_cast<double>(s.um + s.ud) / 8.0;
}

CostProjection ProjectMergeCost(const MergeShape& s, const MachineProfile& m,
                                int threads) {
  DM_CHECK(threads >= 1);
  CostProjection p;
  const double tuples = static_cast<double>(s.total_tuples());
  if (tuples == 0) return p;
  const double stream = m.stream_bytes_per_cycle;
  const double random = m.random_bytes_per_cycle;
  const double ops_rate =
      m.ops_per_cycle_per_core * static_cast<double>(threads);

  // ---- Step 1(a): stream part + random scatter part (Eq. 17's shape).
  const Traffic t1a = Step1aTraffic(s);
  p.step1a_cpt = (t1a.stream_bytes / stream + t1a.random_bytes / random) /
                 tuples;

  // ---- Step 1(b): bandwidth bound vs compute bound; the binding resource
  // is the larger time (§6.1).
  double t1b_bytes = Step1bReadBytes(s) + Step1bWriteBytes(s);
  if (threads > 1) t1b_bytes += Step1bParallelExtraBytes(s);
  const double t1b_bw = t1b_bytes / stream;
  double t1b_ops = kOpsPerDictMergeOutput *
                   static_cast<double>(s.u_merged) / ops_rate;
  if (threads > 1) t1b_ops *= 2.0;  // three-phase merge compares twice
  p.step1b_compute_bound = t1b_ops > t1b_bw;
  p.step1b_cpt = std::max(t1b_bw, t1b_ops) / tuples;

  // ---- Step 2: dominated by whether X_M/X_D fit in cache (§7.3).
  p.aux_fits_cache = AuxiliaryStructureBytes(s) <= m.llc_bytes;
  const double stream_cpt =
      (Step2PartitionReadBytes(s) + Step2OutputWriteBytes(s)) / stream /
      tuples;
  if (p.aux_fits_cache) {
    // Eq. 18: compute-bound gathers from cache + streaming of the
    // partitions.
    p.step2_cpt = kOpsPerStep2Tuple / ops_rate + stream_cpt;
  } else {
    // Eq. 17-style: one line-sized gather per tuple at random bandwidth.
    p.step2_cpt = Step2AuxGatherBytes(s) / random / tuples + stream_cpt;
  }
  return p;
}

double ProjectUpdateRate(const MergeShape& s, const MachineProfile& m,
                         int threads, uint64_t nc, double delta_update_cpt) {
  const CostProjection p = ProjectMergeCost(s, m, threads);
  const double cpt = p.total_cpt() + delta_update_cpt;
  // Eq. 16: rate = N_D · f / (cpt · (N_M + N_D) · N_C).
  const double cycles = cpt * static_cast<double>(s.total_tuples()) *
                        static_cast<double>(nc);
  if (cycles == 0) return 0.0;
  return static_cast<double>(s.nd) * m.frequency_hz / cycles;
}

std::string ToString(const CostProjection& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "CostProjection{1a=%.3f, 1b=%.3f%s, 2=%.3f%s, total=%.3f cpt}",
                p.step1a_cpt, p.step1b_cpt,
                p.step1b_compute_bound ? " (compute)" : " (bw)", p.step2_cpt,
                p.aux_fits_cache ? " (cached)" : " (gather)", p.total_cpt());
  return std::string(buf);
}

}  // namespace deltamerge
