// Copyright (c) 2026 The DeltaMerge Authors.

#include "model/read_cost.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"
#include "util/macros.h"

namespace deltamerge {

double ScanCycles(const MergeShape& s, const MachineProfile& m,
                  int threads) {
  DM_CHECK(threads >= 1);
  const double stream =
      m.stream_bytes_per_cycle;  // shared across threads already
  // Main: E_C bits per tuple, streamed.
  const double main_bytes = s.ec_bits / 8.0 * static_cast<double>(s.nm);
  // Delta: E_j bytes per tuple, streamed — the uncompressed tax.
  const double delta_bytes = s.ej * static_cast<double>(s.nd);
  // Predicate evaluation: ~1 op per tuple, spread over threads.
  const double compute = static_cast<double>(s.nm + s.nd) /
                         (m.ops_per_cycle_per_core *
                          static_cast<double>(threads));
  return std::max((main_bytes + delta_bytes) / stream, compute);
}

double LookupCycles(const MergeShape& s, const MachineProfile& m,
                    int threads) {
  (void)threads;
  // Dictionary binary search: log2 |U_M| dependent line accesses. Dependent
  // loads pay latency, approximated as one line at random bandwidth each.
  const double probes = s.um > 1 ? std::log2(static_cast<double>(s.um)) : 1;
  const double dict_cycles =
      probes * s.cache_line / m.random_bytes_per_cycle;
  // Code scan of the main partition (sequential).
  const double scan_cycles =
      (s.ec_bits / 8.0 * static_cast<double>(s.nm)) /
      m.stream_bytes_per_cycle;
  // CSB+ descent on the delta: fanout of a cache-line node with E_j-byte
  // keys, log_F(|U_D|) node lines.
  const double fanout =
      std::max(2.0, (s.cache_line - 8.0) / s.ej);
  const double levels =
      s.ud > 1 ? std::log(static_cast<double>(s.ud)) / std::log(fanout) : 1;
  const double tree_cycles =
      levels * s.cache_line / m.random_bytes_per_cycle;
  return dict_cycles + scan_cycles + tree_cycles;
}

double DeltaScanTaxCyclesPerTuple(const MergeShape& s,
                                  const MachineProfile& m, int threads) {
  (void)threads;
  // Each delta tuple adds E_j streamed bytes where a merged tuple would
  // cost E'_C bits; the tax is the difference.
  const double delta_bytes = s.ej;
  const double merged_bytes = s.ec_new_bits / 8.0;
  return (delta_bytes - merged_bytes) / m.stream_bytes_per_cycle;
}

double CyclesPerUpdateAt(uint64_t nd, const MergeShape& base,
                         const MachineProfile& m, int threads,
                         const ReadWriteProfile& profile) {
  DM_CHECK(nd >= 1);
  MergeShape s = base;
  s.nd = nd;
  // Dictionary growth: the delta's unique fraction of base applies.
  const double lambda_d =
      base.nd > 0 ? static_cast<double>(base.ud) /
                        static_cast<double>(base.nd)
                  : 1.0;
  s.ud = std::max<uint64_t>(
      1, static_cast<uint64_t>(lambda_d * static_cast<double>(nd)));
  s.u_merged = s.um + s.ud;
  s.DeriveCodeBits();

  // One merge every nd updates: its cycles amortize over nd.
  const CostProjection merge = ProjectMergeCost(s, m, threads);
  const double merge_per_update =
      merge.total_cpt() * static_cast<double>(s.nm + s.nd) /
      static_cast<double>(nd);

  // While the delta fills from 0 to nd, each scan pays the tax on the
  // average fill level nd/2.
  const double tax_per_update =
      profile.scans_per_update * DeltaScanTaxCyclesPerTuple(s, m, threads) *
      static_cast<double>(nd) / 2.0;

  return merge_per_update + tax_per_update;
}

DeltaThreshold AdviseDeltaThreshold(const MergeShape& base,
                                    const MachineProfile& m, int threads,
                                    const ReadWriteProfile& profile) {
  DeltaThreshold best;
  best.cycles_per_update = -1;
  // Log-grid sweep from 256 updates to 50% of the main partition, then one
  // refinement pass around the grid winner.
  const uint64_t lo = 256;
  const uint64_t hi = std::max<uint64_t>(lo * 2, base.nm / 2);
  uint64_t winner = lo;
  for (uint64_t nd = lo; nd <= hi; nd = nd + nd / 2 + 1) {
    const double c = CyclesPerUpdateAt(nd, base, m, threads, profile);
    if (best.cycles_per_update < 0 || c < best.cycles_per_update) {
      best.cycles_per_update = c;
      winner = nd;
    }
  }
  // Refine +/- 50% around the winner on a finer grid.
  const uint64_t r_lo = std::max<uint64_t>(lo, winner / 2);
  const uint64_t r_hi = std::min(hi, winner * 2);
  for (uint64_t nd = r_lo; nd <= r_hi;
       nd = nd + std::max<uint64_t>(1, nd / 16)) {
    const double c = CyclesPerUpdateAt(nd, base, m, threads, profile);
    if (c < best.cycles_per_update) {
      best.cycles_per_update = c;
      winner = nd;
    }
  }

  best.optimal_nd = winner;
  best.fraction_of_main =
      base.nm == 0 ? 0
                   : static_cast<double>(winner) /
                         static_cast<double>(base.nm);
  // Decompose at the optimum for reporting.
  MergeShape s = base;
  s.nd = winner;
  const double lambda_d =
      base.nd > 0 ? static_cast<double>(base.ud) /
                        static_cast<double>(base.nd)
                  : 1.0;
  s.ud = std::max<uint64_t>(
      1, static_cast<uint64_t>(lambda_d * static_cast<double>(winner)));
  s.u_merged = s.um + s.ud;
  s.DeriveCodeBits();
  const CostProjection merge = ProjectMergeCost(s, m, threads);
  best.merge_cycles_per_update = merge.total_cpt() *
                                 static_cast<double>(s.nm + s.nd) /
                                 static_cast<double>(winner);
  best.read_tax_cycles_per_update =
      best.cycles_per_update - best.merge_cycles_per_update;
  return best;
}

}  // namespace deltamerge
