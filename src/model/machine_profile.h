// Copyright (c) 2026 The DeltaMerge Authors.
// MachineProfile: the architectural constants the analytical model (§6, §7.4)
// is parameterized on — clock, streaming and random-gather memory bandwidth
// (in bytes per cycle), last-level cache capacity, and core count.
//
// Two instantiations matter:
//  * Paper()   — the dual-socket Xeon X5680 testbed of §7: 3.3 GHz, ~23 GB/s
//    streaming per socket (≈7 bytes/cycle), ≈5 bytes/cycle random gather,
//    12 MB LLC per socket (24 MB across the platform), 6 cores per socket.
//    §7.4's worked numbers (0.306 cpt, 14.2 cpt, 1.73 cpt) are derived from
//    exactly these constants, so the model-side reproduction is
//    hardware-independent.
//  * Measure() — micro-benchmarks on the host (stream sum, dependent-free
//    random gather) so the model can project host-side bounds.

#pragma once

#include <cstdint>
#include <string>

namespace deltamerge {

struct MachineProfile {
  double frequency_hz = 3.3e9;
  double stream_bytes_per_cycle = 7.0;
  double random_bytes_per_cycle = 5.0;
  /// Effective cache capacity available to the merge's auxiliary structures.
  double llc_bytes = 24.0 * 1024 * 1024;
  int cores = 6;
  /// Sustained simple-op throughput per core (compares, adds, moves).
  double ops_per_cycle_per_core = 1.0;

  /// The paper's single-socket machine constants used throughout §7.4.
  static MachineProfile Paper();

  /// The paper's dual-socket platform (both sockets: 2x bandwidth/cores).
  static MachineProfile PaperTwoSocket();

  /// Measures stream/random bandwidth on this host with `threads` parallel
  /// workers and reads the LLC size from sysfs (falls back to 32 MB).
  static MachineProfile Measure(int threads = 1);

  std::string ToString() const;
};

/// Host micro-benchmarks (also exposed for the bandwidth bench binary).
/// Both return bytes per cycle aggregated across `threads` workers.
double MeasureStreamBandwidth(size_t buffer_bytes, int threads);
double MeasureRandomGatherBandwidth(size_t buffer_bytes, int threads);

/// LLC capacity from sysfs, or `fallback` when unavailable.
uint64_t DetectLlcBytes(uint64_t fallback = 32ull * 1024 * 1024);

}  // namespace deltamerge
