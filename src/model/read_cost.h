// Copyright (c) 2026 The DeltaMerge Authors.
// Read-cost model and delta-size advisor — the §9 future-work extension:
// "we plan to extend the current analytical model with a more detailed model
// for scans and lookup operations [19]", quantifying §4's trade-off:
//
//   small delta  -> cheap reads, frequent merges (high amortized merge cost)
//   large delta  -> reads pay the uncompressed-delta tax (more bytes per
//                   tuple, forced materialization), merges are rare
//
// The advisor finds the delta threshold N_D* that minimizes total cycles per
// update for a given read/write ratio — turning §4's qualitative discussion
// into the number the MergeTriggerPolicy needs.

#pragma once

#include <cstdint>

#include "model/cost_model.h"
#include "model/machine_profile.h"

namespace deltamerge {

/// Cycles to scan one column of N_M compressed + N_D uncompressed tuples
/// with a predicate (Manegold-style stream model [19]): the main partition
/// streams E_C bits per tuple; the delta streams E_j bytes per tuple — the
/// uncompressed-delta read tax of §4.
double ScanCycles(const MergeShape& s, const MachineProfile& m, int threads);

/// Cycles for a key lookup: binary search of the main dictionary
/// (log2 |U_M| dependent cache lines), a code scan of the main partition,
/// plus a CSB+ descent (log_F N_D nodes) and postings walk on the delta.
double LookupCycles(const MergeShape& s, const MachineProfile& m,
                    int threads);

/// The marginal read cost a delta tuple adds to one scan, in cycles —
/// d(ScanCycles)/d(N_D).
double DeltaScanTaxCyclesPerTuple(const MergeShape& s,
                                  const MachineProfile& m, int threads);

/// Workload profile for the advisor: how many column scans execute per
/// update arriving at the table (from Figure 1's mixes: OLTP ~0.2 scans per
/// write at equal query weights; higher for OLAP).
struct ReadWriteProfile {
  double scans_per_update = 0.5;
};

/// Result of the trade-off analysis.
struct DeltaThreshold {
  uint64_t optimal_nd = 0;        ///< N_D* minimizing cycles per update
  double fraction_of_main = 0;    ///< N_D* / N_M — the MergeTriggerPolicy knob
  double cycles_per_update = 0;   ///< at the optimum
  double merge_cycles_per_update = 0;
  double read_tax_cycles_per_update = 0;
};

/// Amortized cycles per update when merging every `nd` updates: the merge
/// cost spread over nd updates plus the average delta read tax paid by the
/// scans arriving while the delta fills.
double CyclesPerUpdateAt(uint64_t nd, const MergeShape& base,
                         const MachineProfile& m, int threads,
                         const ReadWriteProfile& profile);

/// Minimizes CyclesPerUpdateAt over N_D by golden-section-style search on a
/// log grid. `base.nm` fixes the main size; base's unique fractions set the
/// dictionary growth per delta tuple.
DeltaThreshold AdviseDeltaThreshold(const MergeShape& base,
                                    const MachineProfile& m, int threads,
                                    const ReadWriteProfile& profile);

}  // namespace deltamerge
