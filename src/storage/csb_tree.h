// Copyright (c) 2026 The DeltaMerge Authors.
// CsbTree<W>: a Cache-Sensitive B+ tree (Rao & Ross, SIGMOD 2000 [24]) over
// the unique uncompressed values of a delta partition.
//
// The paper maintains, per column, "a CSB+ tree with all the unique
// uncompressed values of the delta partition ... Each value in the tree also
// stores a pointer to the list of tuple ids where the value was inserted"
// (§3, §4.1). The tree provides O(log) inserts/lookups and — critical for
// merge Step 1(a) — an in-order traversal that yields the delta dictionary
// U_D already sorted, in O(|U_D|).
//
// CSB+ layout: every node occupies exactly one cache line; all children of an
// internal node live in one contiguous "node group", so the parent stores a
// single first-child index instead of per-child pointers, roughly doubling
// fan-out relative to a plain B+ tree. The cost is that growing a group
// (on a child split) copies the whole group; superseded groups are abandoned
// inside the arena until Clear(). This matches the paper's observation that
// the tree consumes ≈2x the memory of the raw values (§6.1), and is cheap
// because a delta tree only lives until the next merge.
//
// Values equal to an internal separator key route to the right child
// (separators are the first key of the right sibling at split time).
//
// Thread-safety: none. A delta partition has a single writer; the merge reads
// a frozen tree.

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/fixed_value.h"
#include "util/macros.h"
#include "util/thread_annotations.h"

namespace deltamerge {

namespace csb_detail {

/// Max separator keys in an internal node: header is 8 bytes
/// (first_child + count + padding), the rest of the line holds keys.
constexpr size_t InternalKeyCapacity(size_t value_width) {
  return (kCacheLineSize - 8) / value_width;
}

/// Max entries in a leaf: header 2 bytes padded to the key alignment, then
/// k keys and k postings-list ids must fit in the line.
constexpr size_t LeafKeyCapacity(size_t value_width) {
  const size_t key_align = value_width == 4 ? 4 : 8;
  const size_t keys_offset = key_align;  // count:uint16 padded up
  size_t k = 0;
  while (keys_offset + (k + 1) * value_width + (k + 1) * sizeof(uint32_t) <=
         kCacheLineSize) {
    ++k;
  }
  return k;
}

}  // namespace csb_detail

/// Iterates the tuple ids recorded for one unique value, in insertion order.
class PostingsCursor {
 public:
  PostingsCursor(const uint32_t* tids, const uint32_t* nexts, uint32_t head)
      : tids_(tids), nexts_(nexts), cur_(head) {}

  bool Done() const { return cur_ == UINT32_MAX; }
  uint32_t TupleId() const { return tids_[cur_]; }
  void Advance() { cur_ = nexts_[cur_]; }

 private:
  const uint32_t* tids_;
  const uint32_t* nexts_;
  uint32_t cur_;
};

template <size_t W>
class CsbTree {
 public:
  using Value = FixedValue<W>;

  static constexpr size_t kInternalKeys = csb_detail::InternalKeyCapacity(W);
  static constexpr size_t kLeafKeys = csb_detail::LeafKeyCapacity(W);
  static constexpr uint32_t kNil = UINT32_MAX;

  CsbTree() { Clear(); }

  DM_DISALLOW_COPY(CsbTree);
  CsbTree(CsbTree&&) noexcept = default;
  CsbTree& operator=(CsbTree&&) noexcept = default;

  /// Records that `v` was inserted at tuple position `tuple_id`. Creates the
  /// key if new, else appends to its postings list.
  void Insert(const Value& v, uint32_t tuple_id) {
    Split split;
    if (InsertRec(root_, 0, v, tuple_id, &split)) {
      // Root split: the two halves become a contiguous group under a new root.
      const uint32_t group = AllocGroup(2);
      nodes_[group] = split.left;
      nodes_[group + 1] = split.right;
      const uint32_t new_root = AllocGroup(1);
      Node& r = nodes_[new_root];
      r.internal.first_child = group;
      r.internal.count = 1;
      r.internal.keys[0] = split.separator;
      root_ = new_root;
      ++height_;
    }
    ++total_tuples_;
  }

  /// Number of distinct keys (|U_D|).
  uint64_t unique_keys() const { return unique_keys_; }
  /// Number of inserted tuples (N_D).
  uint64_t total_tuples() const { return total_tuples_; }
  int height() const { return height_; }

  /// In-order traversal: calls fn(value, postings_cursor) for every distinct
  /// key in ascending order. This is merge Step 1(a)'s linear dictionary
  /// extraction.
  template <typename Fn>
  void ForEachSorted(Fn&& fn) const {
    if (unique_keys_ == 0) return;
    Walk(root_, 0, fn);
  }

  /// Traversal restricted to keys in [lo, hi], pruned via separators.
  template <typename Fn>
  void ForEachInRange(const Value& lo, const Value& hi, Fn&& fn) const {
    if (unique_keys_ == 0 || hi < lo) return;
    WalkRange(root_, 0, lo, hi, fn);
  }

  /// Postings for `v`, or a Done() cursor if absent.
  PostingsCursor Find(const Value& v) const {
    if (unique_keys_ == 0) return PostingsCursor(nullptr, nullptr, kNil);
    uint32_t node = root_;
    for (int depth = 0; depth < height_ - 1; ++depth) {
      const Internal& in = nodes_[node].internal;
      node = in.first_child + ChildSlot(in, v);
    }
    const Leaf& leaf = nodes_[node].leaf;
    const int pos = LeafLowerBound(leaf, v);
    if (pos < leaf.count && leaf.keys[pos] == v) {
      return MakeCursor(leaf.postings[pos]);
    }
    return PostingsCursor(nullptr, nullptr, kNil);
  }

  bool Contains(const Value& v) const { return !Find(v).Done(); }

  /// Occurrence count of `v` (postings length) without walking the list.
  uint32_t CountOf(const Value& v) const {
    if (unique_keys_ == 0) return 0;
    uint32_t node = root_;
    for (int depth = 0; depth < height_ - 1; ++depth) {
      const Internal& in = nodes_[node].internal;
      node = in.first_child + ChildSlot(in, v);
    }
    const Leaf& leaf = nodes_[node].leaf;
    const int pos = LeafLowerBound(leaf, v);
    if (pos < leaf.count && leaf.keys[pos] == v) {
      return lists_[leaf.postings[pos]].count;
    }
    return 0;
  }

  /// Arena bytes currently allocated (nodes incl. abandoned groups, postings).
  size_t memory_bytes() const {
    return nodes_.size() * sizeof(Node) + link_tids_.size() * 8 +
           lists_.size() * sizeof(PList);
  }

  /// Bytes in live (reachable) nodes only; the difference to memory_bytes()
  /// is group-copy garbage.
  size_t live_node_bytes() const {
    if (unique_keys_ == 0) return 0;
    return CountLive(root_, 0) * sizeof(Node);
  }

  /// Resets to an empty tree, releasing all arenas.
  void Clear() {
    nodes_.clear();
    link_tids_.clear();
    link_nexts_.clear();
    lists_.clear();
    unique_keys_ = 0;
    total_tuples_ = 0;
    height_ = 1;
    root_ = AllocGroup(1);
    nodes_[root_].leaf.count = 0;
  }

 private:
  struct Internal {
    uint32_t first_child;
    uint16_t count;  // number of separator keys; children = count + 1
    Value keys[kInternalKeys];
  };
  struct Leaf {
    uint16_t count;
    Value keys[kLeafKeys];
    uint32_t postings[kLeafKeys];
  };
  union DM_CACHELINE_ALIGNED Node {
    Internal internal;
    Leaf leaf;
  };
  static_assert(sizeof(Internal) <= kCacheLineSize);
  static_assert(sizeof(Leaf) <= kCacheLineSize);
  static_assert(sizeof(Node) == kCacheLineSize);

  /// Postings list head/tail/length; tuple ids chain through link_nexts_.
  struct PList {
    uint32_t head;
    uint32_t tail;
    uint32_t count;
  };

  struct Split {
    Value separator;
    Node left;
    Node right;
  };

  /// Appends `n` fresh nodes and returns the index of the first. Never
  /// shrinks; references into nodes_ are invalidated.
  uint32_t AllocGroup(uint32_t n) {
    const uint32_t first = static_cast<uint32_t>(nodes_.size());
    nodes_.resize(nodes_.size() + n);
    return first;
  }

  PostingsCursor MakeCursor(uint32_t list_id) const {
    return PostingsCursor(link_tids_.data(), link_nexts_.data(),
                          lists_[list_id].head);
  }

  uint32_t NewPList(uint32_t tid) {
    const uint32_t link = static_cast<uint32_t>(link_tids_.size());
    link_tids_.push_back(tid);
    link_nexts_.push_back(kNil);
    lists_.push_back(PList{link, link, 1});
    return static_cast<uint32_t>(lists_.size() - 1);
  }

  void AppendPList(uint32_t list_id, uint32_t tid) {
    const uint32_t link = static_cast<uint32_t>(link_tids_.size());
    link_tids_.push_back(tid);
    link_nexts_.push_back(kNil);
    PList& pl = lists_[list_id];
    link_nexts_[pl.tail] = link;
    pl.tail = link;
    ++pl.count;
  }

  /// Child index for value `v`: first separator > v (equal keys go right).
  static int ChildSlot(const Internal& in, const Value& v) {
    int lo = 0, hi = in.count;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (v < in.keys[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// First leaf slot with key >= v.
  static int LeafLowerBound(const Leaf& leaf, const Value& v) {
    int lo = 0, hi = leaf.count;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (leaf.keys[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Recursive insert. Returns true iff the node at `node_idx` split, in
  /// which case *out holds the separator and both halves by value (the caller
  /// owns placing them into a fresh contiguous group).
  bool InsertRec(uint32_t node_idx, int depth, const Value& v, uint32_t tid,
                 Split* out) {
    if (depth == height_ - 1) {
      return InsertLeaf(node_idx, v, tid, out);
    }

    // Copy routing state; the recursive call may reallocate the arena.
    const int slot = ChildSlot(nodes_[node_idx].internal, v);
    const uint32_t child = nodes_[node_idx].internal.first_child + slot;

    Split child_split;
    if (!InsertRec(child, depth + 1, v, tid, &child_split)) {
      return false;
    }

    // Child `slot` split: rebuild the child group one node wider.
    const uint16_t old_count = nodes_[node_idx].internal.count;
    const uint32_t old_first = nodes_[node_idx].internal.first_child;
    const uint32_t n_children = old_count + 1u;

    if (old_count < kInternalKeys) {
      const uint32_t new_first = AllocGroup(n_children + 1);
      for (uint32_t k = 0; k < static_cast<uint32_t>(slot); ++k) {
        nodes_[new_first + k] = nodes_[old_first + k];
      }
      nodes_[new_first + slot] = child_split.left;
      nodes_[new_first + slot + 1] = child_split.right;
      for (uint32_t k = slot + 1; k < n_children; ++k) {
        nodes_[new_first + k + 1] = nodes_[old_first + k];
      }
      Internal& in = nodes_[node_idx].internal;  // re-acquire after alloc
      for (int k = old_count; k > slot; --k) {
        in.keys[k] = in.keys[k - 1];
      }
      in.keys[slot] = child_split.separator;
      in.count = static_cast<uint16_t>(old_count + 1);
      in.first_child = new_first;
      return false;
    }

    // This internal node is full: split it into two nodes, each with its own
    // contiguous child group, and bubble the middle separator up.
    Value all_keys[kInternalKeys + 1];
    {
      const Internal& in = nodes_[node_idx].internal;
      for (int k = 0; k < slot; ++k) all_keys[k] = in.keys[k];
      all_keys[slot] = child_split.separator;
      for (int k = slot; k < static_cast<int>(kInternalKeys); ++k) {
        all_keys[k + 1] = in.keys[k];
      }
    }
    std::vector<Node> staged(n_children + 1);
    for (uint32_t k = 0; k < static_cast<uint32_t>(slot); ++k) {
      staged[k] = nodes_[old_first + k];
    }
    staged[slot] = child_split.left;
    staged[slot + 1] = child_split.right;
    for (uint32_t k = slot + 1; k < n_children; ++k) {
      staged[k + 1] = nodes_[old_first + k];
    }

    const uint32_t total_children = n_children + 1;  // kInternalKeys + 2
    const uint32_t left_nc = (total_children + 1) / 2;
    const uint32_t right_nc = total_children - left_nc;
    const uint32_t group_l = AllocGroup(left_nc);
    const uint32_t group_r = AllocGroup(right_nc);
    for (uint32_t k = 0; k < left_nc; ++k) nodes_[group_l + k] = staged[k];
    for (uint32_t k = 0; k < right_nc; ++k) {
      nodes_[group_r + k] = staged[left_nc + k];
    }

    out->separator = all_keys[left_nc - 1];
    std::memset(&out->left, 0, sizeof(Node));
    std::memset(&out->right, 0, sizeof(Node));
    out->left.internal.first_child = group_l;
    out->left.internal.count = static_cast<uint16_t>(left_nc - 1);
    for (uint32_t k = 0; k + 1 < left_nc; ++k) {
      out->left.internal.keys[k] = all_keys[k];
    }
    out->right.internal.first_child = group_r;
    out->right.internal.count = static_cast<uint16_t>(right_nc - 1);
    for (uint32_t k = 0; k + 1 < right_nc; ++k) {
      out->right.internal.keys[k] = all_keys[left_nc + k];
    }
    return true;
  }

  bool InsertLeaf(uint32_t node_idx, const Value& v, uint32_t tid,
                  Split* out) {
    {
      Leaf& leaf = nodes_[node_idx].leaf;
      const int pos = LeafLowerBound(leaf, v);
      if (pos < leaf.count && leaf.keys[pos] == v) {
        AppendPList(leaf.postings[pos], tid);
        return false;
      }
      if (leaf.count < static_cast<int>(kLeafKeys)) {
        const uint32_t list_id = NewPList(tid);
        Leaf& l = nodes_[node_idx].leaf;  // re-acquire: NewPList is arena-safe
        for (int k = l.count; k > pos; --k) {
          l.keys[k] = l.keys[k - 1];
          l.postings[k] = l.postings[k - 1];
        }
        l.keys[pos] = v;
        l.postings[pos] = list_id;
        ++l.count;
        ++unique_keys_;
        return false;
      }
    }

    // Leaf full: split into two halves with the new key placed in order.
    const uint32_t list_id = NewPList(tid);
    const Leaf leaf = nodes_[node_idx].leaf;  // snapshot
    const int pos = LeafLowerBound(leaf, v);

    Value keys[kLeafKeys + 1];
    uint32_t posts[kLeafKeys + 1];
    for (int k = 0; k < pos; ++k) {
      keys[k] = leaf.keys[k];
      posts[k] = leaf.postings[k];
    }
    keys[pos] = v;
    posts[pos] = list_id;
    for (int k = pos; k < static_cast<int>(kLeafKeys); ++k) {
      keys[k + 1] = leaf.keys[k];
      posts[k + 1] = leaf.postings[k];
    }

    const int total = static_cast<int>(kLeafKeys) + 1;
    const int left_n = (total + 1) / 2;
    const int right_n = total - left_n;

    std::memset(&out->left, 0, sizeof(Node));
    std::memset(&out->right, 0, sizeof(Node));
    Leaf& lo = out->left.leaf;
    Leaf& hi = out->right.leaf;
    lo.count = static_cast<uint16_t>(left_n);
    hi.count = static_cast<uint16_t>(right_n);
    for (int k = 0; k < left_n; ++k) {
      lo.keys[k] = keys[k];
      lo.postings[k] = posts[k];
    }
    for (int k = 0; k < right_n; ++k) {
      hi.keys[k] = keys[left_n + k];
      hi.postings[k] = posts[left_n + k];
    }
    out->separator = hi.keys[0];
    ++unique_keys_;
    return true;
  }

  template <typename Fn>
  void Walk(uint32_t node_idx, int depth, Fn&& fn) const {
    if (depth == height_ - 1) {
      const Leaf& leaf = nodes_[node_idx].leaf;
      for (int k = 0; k < leaf.count; ++k) {
        fn(leaf.keys[k], MakeCursor(leaf.postings[k]));
      }
      return;
    }
    const Internal& in = nodes_[node_idx].internal;
    for (uint32_t c = 0; c <= in.count; ++c) {
      Walk(in.first_child + c, depth + 1, fn);
    }
  }

  template <typename Fn>
  void WalkRange(uint32_t node_idx, int depth, const Value& lo,
                 const Value& hi, Fn&& fn) const {
    if (depth == height_ - 1) {
      const Leaf& leaf = nodes_[node_idx].leaf;
      for (int k = LeafLowerBound(leaf, lo); k < leaf.count; ++k) {
        if (hi < leaf.keys[k]) break;
        fn(leaf.keys[k], MakeCursor(leaf.postings[k]));
      }
      return;
    }
    const Internal& in = nodes_[node_idx].internal;
    // Child c covers [keys[c-1], keys[c]); prune children fully outside.
    const int first = ChildSlot(in, lo);
    for (int c = first; c <= in.count; ++c) {
      if (c > 0 && hi < in.keys[c - 1]) break;
      WalkRange(in.first_child + c, depth + 1, lo, hi, fn);
    }
  }

  uint64_t CountLive(uint32_t node_idx, int depth) const {
    if (depth == height_ - 1) return 1;
    const Internal& in = nodes_[node_idx].internal;
    uint64_t n = 1;
    for (uint32_t c = 0; c <= in.count; ++c) {
      n += CountLive(in.first_child + c, depth + 1);
    }
    return n;
  }

  std::vector<Node> nodes_;
  // Postings links as a structure-of-arrays: tuple ids and next-indices.
  std::vector<uint32_t> link_tids_;
  std::vector<uint32_t> link_nexts_;
  std::vector<PList> lists_;
  uint32_t root_ = 0;
  int height_ = 1;
  uint64_t unique_keys_ = 0;
  uint64_t total_tuples_ = 0;
};

}  // namespace deltamerge
