// Copyright (c) 2026 The DeltaMerge Authors.
// DeltaPartition<W>: the write-optimized, uncompressed half of a column.
//
// "Incoming updates are accumulated in the write-optimized delta partition
// ... data in the delta partition is not compressed. In addition ... a CSB+
// tree with all the unique uncompressed values of the delta partition is
// maintained per column." (paper §3)
//
// Values are appended in arrival order (the tuple offset inside the delta is
// the tuple id the CSB+ postings record); reads materialize directly from the
// value array — the "forced materialization" cost §4 charges to large deltas.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "storage/csb_tree.h"
#include "util/fixed_value.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class DeltaPartition {
 public:
  using Value = FixedValue<W>;

  DeltaPartition() = default;
  DM_DISALLOW_COPY(DeltaPartition);
  DeltaPartition(DeltaPartition&&) noexcept = default;
  DeltaPartition& operator=(DeltaPartition&&) noexcept = default;

  /// Appends a value; returns its delta-local tuple id.
  uint32_t Insert(const Value& v) {
    const uint32_t tid = static_cast<uint32_t>(values_.size());
    values_.push_back(v);
    tree_.Insert(v, tid);
    return tid;
  }

  /// N_D for this column.
  uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// |U_D|: distinct values currently in the delta.
  uint64_t unique_values() const { return tree_.unique_keys(); }

  /// Uncompressed read (no dictionary indirection — delta reads are direct).
  const Value& Get(uint64_t tid) const {
    DM_DCHECK(tid < values_.size());
    return values_[tid];
  }

  std::span<const Value> values() const { return values_; }
  const CsbTree<W>& tree() const { return tree_; }

  /// Uncompressed bytes held (E_j * N_D) plus index overhead.
  size_t memory_bytes() const {
    return values_.size() * sizeof(Value) + tree_.memory_bytes();
  }

  void Clear() {
    values_.clear();
    tree_.Clear();
  }

 private:
  std::vector<Value> values_;
  CsbTree<W> tree_;
};

}  // namespace deltamerge
