// Copyright (c) 2026 The DeltaMerge Authors.
// UnsortedDeltaPartition<W>: the §9 future-work alternative delta structure.
//
// "We plan to investigate other delta partition structures to balance the
// insert/merge costs to achieve optimal performance." (§9)
//
// The CSB+-indexed delta (DeltaPartition) pays O(log |U_D|) per insert and
// gets merge Step 1(a) for free (the tree traversal yields U_D sorted). This
// structure is the opposite end of that trade: inserts are a plain append —
// a handful of cycles — and Step 1(a) instead sorts the accumulated
// (value, tuple-id) pairs at merge time, O(N_D log N_D).
//
// Which wins depends on the duplicate ratio and how often reads probe the
// delta: point lookups here are O(N_D) scans instead of tree descents.
// bench_ablation_delta_structure quantifies the trade; the DeltaSizeAdvisor
// (model/read_cost.h) folds it into the merge-frequency decision.

#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/fixed_value.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class UnsortedDeltaPartition {
 public:
  using Value = FixedValue<W>;

  UnsortedDeltaPartition() = default;
  DM_DISALLOW_COPY(UnsortedDeltaPartition);
  UnsortedDeltaPartition(UnsortedDeltaPartition&&) noexcept = default;
  UnsortedDeltaPartition& operator=(UnsortedDeltaPartition&&) noexcept =
      default;

  /// Appends a value; returns its delta-local tuple id. O(1).
  uint32_t Insert(const Value& v) {
    const uint32_t tid = static_cast<uint32_t>(values_.size());
    values_.push_back(v);
    return tid;
  }

  uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& Get(uint64_t tid) const {
    DM_DCHECK(tid < values_.size());
    return values_[tid];
  }

  std::span<const Value> values() const { return values_; }

  /// Point lookup by full scan (no index): occurrences of `v`.
  uint64_t CountEquals(const Value& v) const {
    uint64_t n = 0;
    for (const Value& x : values_) n += (x == v);
    return n;
  }

  /// Range count by full scan.
  uint64_t CountRange(const Value& lo, const Value& hi) const {
    uint64_t n = 0;
    for (const Value& x : values_) n += (lo <= x) && (x <= hi);
    return n;
  }

  /// Merge Step 1(a) for the unsorted layout: sorts (value, tid) pairs,
  /// extracts the sorted unique dictionary, and (if `codes` non-null)
  /// scatters each tuple's dictionary rank — the same outputs the CSB+
  /// traversal produces, at O(N_D log N_D) merge-time cost instead of
  /// O(N_D log |U_D|) insert-time cost.
  std::vector<Value> BuildDictionary(std::vector<uint32_t>* codes) const {
    std::vector<uint32_t> order(values_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return values_[a] < values_[b];
    });

    std::vector<Value> dict;
    if (codes != nullptr) codes->resize(values_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      const Value& v = values_[order[i]];
      if (dict.empty() || dict.back() < v) {
        dict.push_back(v);
      }
      if (codes != nullptr) {
        (*codes)[order[i]] = static_cast<uint32_t>(dict.size() - 1);
      }
    }
    return dict;
  }

  size_t memory_bytes() const { return values_.size() * sizeof(Value); }

  void Clear() { values_.clear(); }

 private:
  std::vector<Value> values_;
};

}  // namespace deltamerge
