// Copyright (c) 2026 The DeltaMerge Authors.
// PackedVector: the bit-compressed code storage of a main partition.
//
// A column's main partition stores, per tuple, the index of its value in the
// sorted dictionary, using E_C = ceil(log2 |U|) bits per code (paper §3, §5,
// Eq. 4). PackedVector packs codes of a fixed bit width (1..32) contiguously
// into 64-bit words. It supports random get/set plus sequential reader and
// writer cursors used by the merge's streaming Step 2.
//
// Thread-safety: concurrent reads are safe. Concurrent writes are safe iff
// the writers' tuple ranges touch disjoint 64-bit words; the parallel merge
// guarantees this by aligning thread chunks to 64-tuple boundaries (64 tuples
// of b bits always end on a word boundary since 64*b % 64 == 0).

#pragma once

#include <cstdint>

#include "util/aligned_buffer.h"
#include "util/bit_util.h"
#include "util/file_io.h"
#include "util/macros.h"

namespace deltamerge {

class PackedVector {
 public:
  static constexpr uint8_t kMaxBits = 32;

  /// An empty vector of 1-bit codes; Reset() before use.
  PackedVector() : bits_(1), size_(0), capacity_(0) {}

  /// A vector of `size` codes of `bits` bits each, zero-initialized.
  PackedVector(uint64_t size, uint8_t bits) { Reset(size, bits); }

  PackedVector(PackedVector&&) noexcept = default;
  PackedVector& operator=(PackedVector&&) noexcept = default;
  DM_DISALLOW_COPY(PackedVector);

  /// Re-initializes to `size` zero codes of `bits` bits.
  void Reset(uint64_t size, uint8_t bits);

  uint64_t size() const { return size_; }
  uint8_t bits() const { return bits_; }
  bool empty() const { return size_ == 0; }

  /// Bytes of backing storage (whole words), the quantity that enters the
  /// memory-traffic model (Eqs. 13, 14).
  size_t byte_size() const { return buffer_.size(); }

  const uint64_t* words() const { return buffer_.As<uint64_t>(); }
  uint64_t* words() { return buffer_.As<uint64_t>(); }

  // --- durability (checkpoint files; see src/persist) ----------------------

  /// Writes size, bit width, and the packed words (host endianness).
  Status Serialize(FileWriter& out) const;

  /// Reads a vector written by Serialize, validating the declared shape
  /// against the word count so corrupt checkpoints fail loudly.
  static Result<PackedVector> Deserialize(FileReader& in);

  /// Reads code `i`. Hot path: two shifted loads at most.
  uint32_t Get(uint64_t i) const {
    DM_DCHECK(i < size_);
    const uint64_t bit = i * bits_;
    const uint64_t word = bit >> 6;
    const unsigned shift = static_cast<unsigned>(bit & 63);
    const uint64_t* w = buffer_.As<uint64_t>();
    uint64_t v = w[word] >> shift;
    if (shift + bits_ > 64) {
      v |= w[word + 1] << (64 - shift);
    }
    return static_cast<uint32_t>(v & LowBitsMask(bits_));
  }

  /// Writes code `i`. Not safe for concurrent writers within one word.
  void Set(uint64_t i, uint32_t value) {
    DM_DCHECK(i < size_);
    DM_DCHECK(uint64_t{value} <= LowBitsMask(bits_));
    const uint64_t bit = i * bits_;
    const uint64_t word = bit >> 6;
    const unsigned shift = static_cast<unsigned>(bit & 63);
    uint64_t* w = buffer_.As<uint64_t>();
    const uint64_t mask = LowBitsMask(bits_);
    w[word] = (w[word] & ~(mask << shift)) |
              (static_cast<uint64_t>(value) << shift);
    if (shift + bits_ > 64) {
      const unsigned spill = static_cast<unsigned>(shift + bits_ - 64);
      const uint64_t hi_mask = LowBitsMask(static_cast<uint8_t>(spill));
      w[word + 1] = (w[word + 1] & ~hi_mask) |
                    (static_cast<uint64_t>(value) >> (64 - shift));
    }
  }

  /// Sequential reader cursor; noticeably faster than repeated Get() because
  /// the word and shift advance incrementally.
  class Reader {
   public:
    /// Positioned at tuple `start` of `v`.
    Reader(const PackedVector& v, uint64_t start = 0)
        : words_(v.words()), bits_(v.bits()), bit_(start * v.bits()) {}

    uint32_t Next() {
      const uint64_t word = bit_ >> 6;
      const unsigned shift = static_cast<unsigned>(bit_ & 63);
      uint64_t v = words_[word] >> shift;
      if (shift + bits_ > 64) {
        v |= words_[word + 1] << (64 - shift);
      }
      bit_ += bits_;
      return static_cast<uint32_t>(v & LowBitsMask(bits_));
    }

   private:
    const uint64_t* words_;
    uint8_t bits_;
    uint64_t bit_;
  };

  /// Sequential writer cursor. Must start on a 64-tuple boundary (or tuple 0)
  /// when several writers share the vector; see the class comment.
  class Writer {
   public:
    Writer(PackedVector& v, uint64_t start = 0)
        : words_(v.words()), bits_(v.bits()), bit_(start * v.bits()) {}

    void Append(uint32_t value) {
      DM_DCHECK(uint64_t{value} <= LowBitsMask(bits_));
      const uint64_t word = bit_ >> 6;
      const unsigned shift = static_cast<unsigned>(bit_ & 63);
      const uint64_t mask = LowBitsMask(bits_);
      words_[word] = (words_[word] & ~(mask << shift)) |
                     (static_cast<uint64_t>(value) << shift);
      if (shift + bits_ > 64) {
        const unsigned spill = static_cast<unsigned>(shift + bits_ - 64);
        const uint64_t hi_mask = LowBitsMask(static_cast<uint8_t>(spill));
        words_[word + 1] = (words_[word + 1] & ~hi_mask) |
                           (static_cast<uint64_t>(value) >> (64 - shift));
      }
      bit_ += bits_;
    }

   private:
    uint64_t* words_;
    uint8_t bits_;
    uint64_t bit_;
  };

 private:
  AlignedBuffer buffer_;
  uint8_t bits_;
  uint64_t size_;
  uint64_t capacity_;
};

}  // namespace deltamerge
