// Copyright (c) 2026 The DeltaMerge Authors.
// Column<W>: one attribute of a table — a compressed main partition, an
// active write-optimized delta, and (while a merge is running) a frozen
// delta snapshot.
//
// "During the merge, incoming updates are stored in a temporary second
// delta, which becomes the primary delta when the merge result is committed"
// (§3). Freeze/commit are O(1) pointer swaps; the merge itself runs against
// immutable state, which is what lets it proceed without the table lock.
//
// Row addressing: the tuple offset is the implicit surrogate id (§3). Rows
// [0, main.size()) live in main, then frozen-delta rows, then active-delta
// rows. A merge concatenates main + frozen in order, so global row ids are
// stable across merges.

#pragma once

#include <memory>
#include <utility>

#include "storage/delta_partition.h"
#include "storage/main_partition.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class Column {
 public:
  using Value = FixedValue<W>;

  Column() = default;
  explicit Column(MainPartition<W> main) : main_(std::move(main)) {}
  DM_DISALLOW_COPY(Column);
  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;

  /// Appends to the active delta; returns the new global row id.
  uint64_t Insert(const Value& v) {
    const uint64_t base = main_.size() + frozen_size();
    return base + delta_.Insert(v);
  }

  uint64_t main_size() const { return main_.size(); }
  uint64_t delta_size() const { return delta_.size(); }
  uint64_t frozen_size() const { return frozen_ ? frozen_->size() : 0; }
  uint64_t size() const { return main_size() + frozen_size() + delta_size(); }

  bool merge_in_progress() const { return frozen_ != nullptr; }

  /// Materializes the value at a global row id, whichever partition holds it.
  Value Get(uint64_t row) const {
    if (row < main_.size()) return main_.GetValue(row);
    row -= main_.size();
    const uint64_t fs = frozen_size();
    if (row < fs) return frozen_->Get(row);
    return delta_.Get(row - fs);
  }

  const MainPartition<W>& main() const { return main_; }
  const DeltaPartition<W>& delta() const { return delta_; }
  const DeltaPartition<W>* frozen() const { return frozen_.get(); }

  /// Starts a merge epoch: the active delta becomes the frozen snapshot and
  /// a fresh active delta accepts subsequent inserts. Requires no merge in
  /// progress.
  void FreezeDelta() {
    DM_CHECK_MSG(!merge_in_progress(), "merge already in progress");
    frozen_ = std::make_unique<DeltaPartition<W>>(std::move(delta_));
    delta_ = DeltaPartition<W>();
  }

  /// Finishes a merge epoch: installs the merged main (which must contain
  /// main + frozen) and discards the frozen snapshot.
  void CommitMerge(MainPartition<W> merged) {
    DM_CHECK_MSG(merge_in_progress(), "no merge in progress");
    DM_CHECK_MSG(merged.size() == main_.size() + frozen_->size(),
                 "merged partition has wrong cardinality");
    main_ = std::move(merged);
    frozen_.reset();
  }

  /// Abandons a merge epoch without installing a result, returning the
  /// frozen tuples to the head of the active delta (re-inserted in order so
  /// row ids are preserved).
  void AbortMerge() {
    DM_CHECK_MSG(merge_in_progress(), "no merge in progress");
    std::unique_ptr<DeltaPartition<W>> frozen = std::move(frozen_);
    DeltaPartition<W> active = std::move(delta_);
    delta_ = DeltaPartition<W>();
    for (const auto& v : frozen->values()) delta_.Insert(v);
    for (const auto& v : active.values()) delta_.Insert(v);
  }

  size_t memory_bytes() const {
    return main_.memory_bytes() + delta_.memory_bytes() +
           (frozen_ ? frozen_->memory_bytes() : 0);
  }

 private:
  MainPartition<W> main_;
  DeltaPartition<W> delta_;
  std::unique_ptr<DeltaPartition<W>> frozen_;
};

}  // namespace deltamerge
