// Copyright (c) 2026 The DeltaMerge Authors.
// Column<W>: one attribute of a table — a compressed main partition, an
// active write-optimized delta, and (while a merge is running) a frozen
// delta snapshot.
//
// "During the merge, incoming updates are stored in a temporary second
// delta, which becomes the primary delta when the merge result is committed"
// (§3). Freeze/commit are O(1) pointer swaps; the merge itself runs against
// immutable state, which is what lets it proceed without the table lock.
//
// Row addressing: the tuple offset is the implicit surrogate id (§3). Rows
// [0, main.size()) live in main, then frozen-delta rows, then active-delta
// rows. A merge concatenates main + frozen in order, so global row ids are
// stable across merges.
//
// Generation pinning: every partition lives behind a unique_ptr, so its
// address is stable across freeze (the active delta *object* becomes the
// frozen one) and commit (a fresh merged main is installed next to the old
// one). CommitMerge/AbortMerge hand the superseded partition objects back
// to the caller instead of destroying them — a snapshot reader that pinned
// an epoch before the commit may still be scanning them (see
// core/snapshot.h for the reclamation protocol).

#pragma once

#include <memory>
#include <utility>

#include "storage/delta_partition.h"
#include "storage/main_partition.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class Column {
 public:
  using Value = FixedValue<W>;

  /// The partition objects a commit or abort superseded; the caller either
  /// destroys them (no concurrent readers) or retires them to an epoch
  /// manager until every snapshot that could reference them drains.
  struct RetiredParts {
    std::unique_ptr<MainPartition<W>> main;
    std::unique_ptr<DeltaPartition<W>> frozen;
    std::unique_ptr<DeltaPartition<W>> active;
  };

  Column()
      : main_(std::make_unique<MainPartition<W>>()),
        delta_(std::make_unique<DeltaPartition<W>>()) {}
  explicit Column(MainPartition<W> main)
      : main_(std::make_unique<MainPartition<W>>(std::move(main))),
        delta_(std::make_unique<DeltaPartition<W>>()) {}
  DM_DISALLOW_COPY(Column);
  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;

  /// Appends to the active delta; returns the new global row id.
  uint64_t Insert(const Value& v) {
    const uint64_t base = main_->size() + frozen_size();
    return base + delta_->Insert(v);
  }

  uint64_t main_size() const { return main_->size(); }
  uint64_t delta_size() const { return delta_->size(); }
  uint64_t frozen_size() const { return frozen_ ? frozen_->size() : 0; }
  uint64_t size() const { return main_size() + frozen_size() + delta_size(); }

  bool merge_in_progress() const { return frozen_ != nullptr; }

  /// Materializes the value at a global row id, whichever partition holds it.
  Value Get(uint64_t row) const {
    if (row < main_->size()) return main_->GetValue(row);
    row -= main_->size();
    const uint64_t fs = frozen_size();
    if (row < fs) return frozen_->Get(row);
    return delta_->Get(row - fs);
  }

  const MainPartition<W>& main() const { return *main_; }
  const DeltaPartition<W>& delta() const { return *delta_; }
  const DeltaPartition<W>* frozen() const { return frozen_.get(); }

  /// Starts a merge epoch: the active delta becomes the frozen snapshot and
  /// a fresh active delta accepts subsequent inserts. The frozen partition
  /// keeps its heap address, so readers holding a pre-freeze pointer to the
  /// then-active delta keep reading the same (now immutable) object.
  /// Requires no merge in progress.
  void FreezeDelta() {
    DM_CHECK_MSG(!merge_in_progress(), "merge already in progress");
    frozen_ = std::move(delta_);
    delta_ = std::make_unique<DeltaPartition<W>>();
  }

  /// Finishes a merge epoch: installs the merged main (which must contain
  /// main + frozen) and returns the superseded old main and frozen delta.
  RetiredParts CommitMerge(MainPartition<W> merged) {
    DM_CHECK_MSG(merge_in_progress(), "no merge in progress");
    DM_CHECK_MSG(merged.size() == main_->size() + frozen_->size(),
                 "merged partition has wrong cardinality");
    RetiredParts retired;
    retired.main = std::move(main_);
    retired.frozen = std::move(frozen_);
    main_ = std::make_unique<MainPartition<W>>(std::move(merged));
    return retired;
  }

  /// Abandons a merge epoch without installing a result, returning the
  /// frozen tuples to the head of the active delta (re-inserted in order so
  /// row ids are preserved). The superseded frozen and active partition
  /// objects are returned for deferred reclamation.
  RetiredParts AbortMerge() {
    DM_CHECK_MSG(merge_in_progress(), "no merge in progress");
    RetiredParts retired;
    retired.frozen = std::move(frozen_);
    retired.active = std::move(delta_);
    delta_ = std::make_unique<DeltaPartition<W>>();
    for (const auto& v : retired.frozen->values()) delta_->Insert(v);
    for (const auto& v : retired.active->values()) delta_->Insert(v);
    return retired;
  }

  size_t memory_bytes() const {
    return main_->memory_bytes() + delta_->memory_bytes() +
           (frozen_ ? frozen_->memory_bytes() : 0);
  }

 private:
  std::unique_ptr<MainPartition<W>> main_;
  std::unique_ptr<DeltaPartition<W>> delta_;
  std::unique_ptr<DeltaPartition<W>> frozen_;
};

}  // namespace deltamerge
