// Copyright (c) 2026 The DeltaMerge Authors.
// Dictionary<W>: the sorted unique-value dictionary of a partition.
//
// The main partition's dictionary U_M is "an ordered collection ... allowing
// fast iterations over the tuples in sorted order" with binary-search lookup
// (paper §3). A value's code is its index in this sorted array; consequently
// range predicates on values become contiguous code ranges, which is what
// makes scans on the compressed partition cheap.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/bit_util.h"
#include "util/file_io.h"
#include "util/fixed_value.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class Dictionary {
 public:
  using Value = FixedValue<W>;

  Dictionary() = default;

  /// Builds from values already sorted and unique. Debug builds verify.
  static Dictionary FromSortedUnique(std::vector<Value> values) {
#ifndef NDEBUG
    for (size_t i = 1; i < values.size(); ++i) {
      DM_DCHECK(values[i - 1] < values[i]);
    }
#endif
    Dictionary d;
    d.values_ = std::move(values);
    return d;
  }

  /// Builds by sorting and deduplicating arbitrary values (cold path; used by
  /// table builders and tests, not by the merge).
  static Dictionary FromUnsorted(std::vector<Value> values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    Dictionary d;
    d.values_ = std::move(values);
    return d;
  }

  uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Bits per code for this dictionary: E_C = ceil(log2 |U|) (Eq. 4).
  uint8_t code_bits() const { return BitsForCardinality(values_.size()); }

  /// The uncompressed value for `code` (materialization).
  const Value& At(uint32_t code) const {
    DM_DCHECK(code < values_.size());
    return values_[code];
  }

  /// Binary search: the code of `v`, or nullopt if absent. O(log |U|).
  std::optional<uint32_t> Find(const Value& v) const {
    auto it = std::lower_bound(values_.begin(), values_.end(), v);
    if (it != values_.end() && *it == v) {
      return static_cast<uint32_t>(it - values_.begin());
    }
    return std::nullopt;
  }

  /// Index of the first value >= v (== size() if none).
  uint32_t LowerBound(const Value& v) const {
    return static_cast<uint32_t>(
        std::lower_bound(values_.begin(), values_.end(), v) -
        values_.begin());
  }

  /// Index of the first value > v (== size() if none).
  uint32_t UpperBound(const Value& v) const {
    return static_cast<uint32_t>(
        std::upper_bound(values_.begin(), values_.end(), v) -
        values_.begin());
  }

  std::span<const Value> values() const { return values_; }

  /// Bytes consumed by the value array (enters the traffic model: E_j * |U|).
  size_t byte_size() const { return values_.size() * sizeof(Value); }

  // --- durability (checkpoint files; see src/persist) ----------------------

  /// Writes the dictionary as a length-prefixed raw value array. Values are
  /// trivially copyable PODs, so the on-disk form is the in-memory form
  /// (host endianness — checkpoints are not portable across byte orders).
  Status Serialize(FileWriter& out) const {
    DM_RETURN_NOT_OK(out.WriteU64(values_.size()));
    if (!values_.empty()) {
      DM_RETURN_NOT_OK(out.Write(values_.data(), byte_size()));
    }
    return Status::OK();
  }

  /// Reads a dictionary written by Serialize, verifying sortedness (the
  /// invariant every query and merge relies on) so a corrupt checkpoint
  /// fails recovery instead of corrupting answers.
  static Result<Dictionary> Deserialize(FileReader& in) {
    uint64_t count = 0;
    DM_RETURN_NOT_OK(in.ReadU64(&count));
    // Overflow-safe bound on an untrusted count (the CRC trailer has not
    // been verified yet): divide, never multiply.
    if (count > in.file_size() / sizeof(Value)) {
      return Status::Internal("dictionary length exceeds file size");
    }
    std::vector<Value> values(count);
    if (count > 0) {
      DM_RETURN_NOT_OK(in.Read(values.data(), count * sizeof(Value)));
    }
    for (size_t i = 1; i < values.size(); ++i) {
      if (!(values[i - 1] < values[i])) {
        return Status::Internal("dictionary is not sorted-unique");
      }
    }
    Dictionary d;
    d.values_ = std::move(values);
    return d;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace deltamerge
