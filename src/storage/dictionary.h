// Copyright (c) 2026 The DeltaMerge Authors.
// Dictionary<W>: the sorted unique-value dictionary of a partition.
//
// The main partition's dictionary U_M is "an ordered collection ... allowing
// fast iterations over the tuples in sorted order" with binary-search lookup
// (paper §3). A value's code is its index in this sorted array; consequently
// range predicates on values become contiguous code ranges, which is what
// makes scans on the compressed partition cheap.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/bit_util.h"
#include "util/fixed_value.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class Dictionary {
 public:
  using Value = FixedValue<W>;

  Dictionary() = default;

  /// Builds from values already sorted and unique. Debug builds verify.
  static Dictionary FromSortedUnique(std::vector<Value> values) {
#ifndef NDEBUG
    for (size_t i = 1; i < values.size(); ++i) {
      DM_DCHECK(values[i - 1] < values[i]);
    }
#endif
    Dictionary d;
    d.values_ = std::move(values);
    return d;
  }

  /// Builds by sorting and deduplicating arbitrary values (cold path; used by
  /// table builders and tests, not by the merge).
  static Dictionary FromUnsorted(std::vector<Value> values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    Dictionary d;
    d.values_ = std::move(values);
    return d;
  }

  uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Bits per code for this dictionary: E_C = ceil(log2 |U|) (Eq. 4).
  uint8_t code_bits() const { return BitsForCardinality(values_.size()); }

  /// The uncompressed value for `code` (materialization).
  const Value& At(uint32_t code) const {
    DM_DCHECK(code < values_.size());
    return values_[code];
  }

  /// Binary search: the code of `v`, or nullopt if absent. O(log |U|).
  std::optional<uint32_t> Find(const Value& v) const {
    auto it = std::lower_bound(values_.begin(), values_.end(), v);
    if (it != values_.end() && *it == v) {
      return static_cast<uint32_t>(it - values_.begin());
    }
    return std::nullopt;
  }

  /// Index of the first value >= v (== size() if none).
  uint32_t LowerBound(const Value& v) const {
    return static_cast<uint32_t>(
        std::lower_bound(values_.begin(), values_.end(), v) -
        values_.begin());
  }

  /// Index of the first value > v (== size() if none).
  uint32_t UpperBound(const Value& v) const {
    return static_cast<uint32_t>(
        std::upper_bound(values_.begin(), values_.end(), v) -
        values_.begin());
  }

  std::span<const Value> values() const { return values_; }

  /// Bytes consumed by the value array (enters the traffic model: E_j * |U|).
  size_t byte_size() const { return values_.size() * sizeof(Value); }

 private:
  std::vector<Value> values_;
};

}  // namespace deltamerge
