// Copyright (c) 2026 The DeltaMerge Authors.
// ValidityVector: the insert-only table's tombstone bitmap.
//
// "Updates are always modeled as new inserts and deletes only invalidate
// rows. We keep the insertion order of tuples and only the lastly inserted
// version is valid." (paper §3). One bit per table row; set = visible.
//
// Snapshot support: each invalidation is additionally appended to a
// monotone tombstone log, so a reader that captured the log length S can
// reconstruct the bitmap as of S: a row whose bit is now clear was still
// valid at S iff its invalidation seq (= its log index) is >= S. A row is
// invalidated at most once (bits never come back), so a row -> seq map
// makes the reconstruction O(1) per row. The log itself orders pruning:
// entries below every pinned snapshot's seq are dropped (see Table).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/macros.h"

namespace deltamerge {

class ValidityVector {
 public:
  ValidityVector() = default;

  /// Appends `n` rows, all valid. Returns the first new row id.
  uint64_t Append(uint64_t n = 1);

  /// Marks a row invisible (delete / superseded version) and logs the
  /// transition. Idempotent: an already-invalid row is not re-logged.
  void Invalidate(uint64_t row);

  bool IsValid(uint64_t row) const {
    DM_DCHECK(row < size_);
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  uint64_t size() const { return size_; }
  uint64_t valid_count() const { return valid_count_; }

  // --- snapshot hooks -------------------------------------------------------

  /// Total invalidations ever applied — the version a snapshot captures.
  uint64_t tombstone_seq() const {
    return tombstone_base_ + tombstones_.size();
  }

  /// Was `row` valid when the tombstone log stood at `seq`? O(1). Requires
  /// that entries at or above `seq` have not been pruned (the min-pinned
  /// prune discipline guarantees this for every live snapshot's seq).
  bool IsValidAtSeq(uint64_t row, uint64_t seq) const;

  /// Entries currently buffered (prune-pressure signal for the owner).
  uint64_t tombstone_log_size() const { return tombstones_.size(); }

  /// Drops the whole log. Only legal while no snapshot that could consult
  /// the dropped entries is pinned.
  void PruneTombstones();

  /// Drops entries below absolute seq `seq` — everything no live snapshot
  /// can consult (IsValidAtSeq only scans from its captured seq upward), so
  /// the log stays bounded by the span between the oldest pinned snapshot
  /// and now even under continuous reader load.
  void PruneTombstonesBefore(uint64_t seq);

  /// Calls fn(row) for every valid row in order.
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (uint64_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        const uint64_t row = (w << 6) + static_cast<uint64_t>(b);
        if (row < size_) fn(row);
      }
    }
  }

  void Clear();

  // --- durability (checkpoint files; see src/persist) -----------------------

  /// The words covering the first `rows` rows, with bits at or beyond `rows`
  /// cleared — what a checkpoint persists for the main-partition prefix.
  /// Cheap (one memcpy); safe to call under the table's commit lock.
  std::vector<uint64_t> CopyWordsPrefix(uint64_t rows) const;

  /// Valid rows among the first `rows` rows.
  uint64_t CountValidPrefix(uint64_t rows) const;

  /// Rebuilds a vector of `rows` rows from checkpoint words (the inverse of
  /// CopyWordsPrefix); the tombstone log starts empty — recovery has no
  /// pinned snapshots.
  static ValidityVector FromWords(std::vector<uint64_t> words, uint64_t rows);

 private:
  std::vector<uint64_t> words_;
  uint64_t size_ = 0;
  uint64_t valid_count_ = 0;
  std::vector<uint64_t> tombstones_;  ///< rows, in invalidation order
  uint64_t tombstone_base_ = 0;       ///< absolute seq of tombstones_[0]
  /// row -> its invalidation seq, for unpruned entries only.
  std::unordered_map<uint64_t, uint64_t> tombstone_seq_by_row_;
};

}  // namespace deltamerge
