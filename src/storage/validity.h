// Copyright (c) 2026 The DeltaMerge Authors.
// ValidityVector: the insert-only table's tombstone bitmap.
//
// "Updates are always modeled as new inserts and deletes only invalidate
// rows. We keep the insertion order of tuples and only the lastly inserted
// version is valid." (paper §3). One bit per table row; set = visible.

#pragma once

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace deltamerge {

class ValidityVector {
 public:
  ValidityVector() = default;

  /// Appends `n` rows, all valid. Returns the first new row id.
  uint64_t Append(uint64_t n = 1);

  /// Marks a row invisible (delete / superseded version).
  void Invalidate(uint64_t row);

  bool IsValid(uint64_t row) const {
    DM_DCHECK(row < size_);
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  uint64_t size() const { return size_; }
  uint64_t valid_count() const { return valid_count_; }

  /// Calls fn(row) for every valid row in order.
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (uint64_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        const uint64_t row = (w << 6) + static_cast<uint64_t>(b);
        if (row < size_) fn(row);
      }
    }
  }

  void Clear();

 private:
  std::vector<uint64_t> words_;
  uint64_t size_ = 0;
  uint64_t valid_count_ = 0;
};

}  // namespace deltamerge
