// Copyright (c) 2026 The DeltaMerge Authors.
// ValidityVector: the insert-only table's tombstone bitmap + row timestamps.
//
// "Updates are always modeled as new inserts and deletes only invalidate
// rows. We keep the insertion order of tuples and only the lastly inserted
// version is valid." (paper §3). One bit per table row; set = visible.
//
// MVCC support (Hekaton-style, Larson et al.): every row carries the commit
// timestamp of the write that inserted it, and every invalidation is logged
// with the commit timestamp of the write that killed it. A reader that
// captured read timestamp R reconstructs the bitmap as of R in O(1) per
// row: the row existed at R iff insert_ts <= R, and was still alive iff its
// bit is set now or its invalidation timestamp is > R. Timestamps come from
// the table's commit clock (EpochManager): every committing write advances
// the clock and stamps with the NEW value, so they are strictly monotone in
// commit order — which makes the tombstone log monotone too, and pruning a
// prefix of it sound. Timestamp 0 is the pre-MVCC sentinel ("outside any
// snapshot's history"): a ts-0 insert is visible to every read timestamp,
// a ts-0 invalidation to none. The table never stamps 0; plain unit tests
// and legacy checkpoint images do.
//
// The log orders pruning: entries at or below every pinned snapshot's read
// timestamp answer "invalid" exactly like an absent entry, so they can be
// dropped (see Table).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/macros.h"

namespace deltamerge {

class ValidityVector {
 public:
  ValidityVector() = default;

  /// Appends `n` rows, all valid, stamped with commit timestamp `ts`.
  /// Returns the first new row id.
  uint64_t Append(uint64_t n = 1, uint64_t ts = 0);

  /// Marks a row invisible (delete / superseded version) and logs the
  /// transition at commit timestamp `ts`. Idempotent: an already-invalid
  /// row is not re-logged.
  void Invalidate(uint64_t row, uint64_t ts = 0);

  bool IsValid(uint64_t row) const {
    DM_DCHECK(row < size_);
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  uint64_t size() const { return size_; }
  uint64_t valid_count() const { return valid_count_; }

  // --- snapshot hooks -------------------------------------------------------

  /// Was `row` alive at read timestamp `read_ts`? O(1). Requires that
  /// tombstone entries above `read_ts` have not been pruned (the min-pinned
  /// prune discipline guarantees this for every live snapshot).
  bool IsValidAtTs(uint64_t row, uint64_t read_ts) const;

  /// Commit timestamp of the insert that created `row` (0 = pre-MVCC).
  uint64_t insert_ts(uint64_t row) const {
    DM_DCHECK(row < size_);
    return insert_ts_[row];
  }

  /// Entries currently buffered (prune-pressure signal for the owner).
  uint64_t tombstone_log_size() const { return tombstones_.size(); }

  /// Drops the whole log. Only legal while no snapshot that could consult
  /// the dropped entries is pinned.
  void PruneTombstones();

  /// Drops the log prefix whose invalidation timestamps are <= `limit_ts` —
  /// for such an entry every live read timestamp R >= limit_ts answers
  /// "invalid" whether the entry is present or pruned, so nothing a pinned
  /// snapshot could consult is lost. The log stays bounded by the span
  /// between the oldest pinned snapshot and now even under continuous
  /// reader load.
  void PruneTombstonesBefore(uint64_t limit_ts);

  /// Calls fn(row) for every valid row in order.
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (uint64_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        const uint64_t row = (w << 6) + static_cast<uint64_t>(b);
        if (row < size_) fn(row);
      }
    }
  }

  void Clear();

  // --- durability (checkpoint files; see src/persist) -----------------------

  /// The words covering the first `rows` rows, with bits at or beyond `rows`
  /// cleared — what a checkpoint persists for the main-partition prefix.
  /// Cheap (one memcpy); safe to call under the table's commit lock.
  std::vector<uint64_t> CopyWordsPrefix(uint64_t rows) const;

  /// The validity bitmap AS OF read timestamp `read_ts`, for the first
  /// `rows` rows: the current words with every row whose invalidation
  /// committed after `read_ts` resurrected from the tombstone log. O(words
  /// + log-suffix). Feeds the validity-masked SIMD kernels: a snapshot
  /// copies its at-ts bitmap once under the shared lock, then sweeps the
  /// pinned main with no lock held. Requires every row < `rows` to have
  /// been inserted at or before `read_ts` (always true for a Snapshot's
  /// visible prefix — insert timestamps are monotone, which is also how
  /// the precondition is DCHECKed) and, like IsValidAtTs, that entries
  /// above `read_ts` have not been pruned.
  std::vector<uint64_t> CopyWordsAtTs(uint64_t rows, uint64_t read_ts) const;

  /// The insert timestamps of the first `rows` rows — persisted alongside
  /// the words so recovered rows keep their MVCC history (a checkpoint also
  /// records the commit clock; recovery seeds the clock from it so these
  /// stamps stay <= every post-restart read timestamp).
  std::vector<uint64_t> CopyInsertTsPrefix(uint64_t rows) const;

  /// Valid rows among the first `rows` rows.
  uint64_t CountValidPrefix(uint64_t rows) const;

  /// Rebuilds a vector of `rows` rows from checkpoint words (the inverse of
  /// CopyWordsPrefix); the tombstone log starts empty — recovery has no
  /// pinned snapshots. `insert_ts` restores the per-row stamps (empty =
  /// all 0, the pre-MVCC image).
  static ValidityVector FromWords(std::vector<uint64_t> words, uint64_t rows,
                                  std::vector<uint64_t> insert_ts = {});

 private:
  struct Tombstone {
    uint64_t row;
    uint64_t ts;  ///< commit timestamp of the invalidation
  };

  std::vector<uint64_t> words_;
  uint64_t size_ = 0;
  uint64_t valid_count_ = 0;
  /// Per-row insert commit timestamp (size_ entries).
  std::vector<uint64_t> insert_ts_;
  /// Invalidation order == commit order, so ts is monotone non-decreasing.
  std::vector<Tombstone> tombstones_;
  /// row -> its invalidation ts, for unpruned entries only.
  std::unordered_map<uint64_t, uint64_t> inv_ts_by_row_;
};

}  // namespace deltamerge
