// Copyright (c) 2026 The DeltaMerge Authors.
// MainPartition<W>: the read-optimized, dictionary-compressed half of a
// column: a sorted dictionary U_M plus a bit-packed code vector M with
// E_C = ceil(log2 |U_M|) bits per tuple (paper §3).

#pragma once

#include <cstdint>
#include <vector>

#include "storage/dictionary.h"
#include "storage/packed_vector.h"
#include "util/fixed_value.h"
#include "util/macros.h"

namespace deltamerge {

template <size_t W>
class MainPartition {
 public:
  using Value = FixedValue<W>;

  MainPartition() = default;
  DM_DISALLOW_COPY(MainPartition);
  MainPartition(MainPartition&&) noexcept = default;
  MainPartition& operator=(MainPartition&&) noexcept = default;

  /// Assembles a partition from a pre-built dictionary and code vector whose
  /// width must match the dictionary cardinality. This is what the merge
  /// produces; it is also the fast path for table builders.
  static MainPartition FromParts(Dictionary<W> dictionary,
                                 PackedVector codes) {
    DM_CHECK_MSG(codes.empty() || codes.bits() == dictionary.code_bits(),
                 "code width does not match dictionary cardinality");
    MainPartition p;
    p.dictionary_ = std::move(dictionary);
    p.codes_ = std::move(codes);
    return p;
  }

  /// Compresses raw values (cold path for tests/builders): builds the sorted
  /// dictionary, then encodes every value as its dictionary rank.
  static MainPartition FromValues(const std::vector<Value>& values) {
    Dictionary<W> dict = Dictionary<W>::FromUnsorted(values);
    PackedVector codes(values.size(), dict.code_bits());
    typename PackedVector::Writer w(codes);
    for (const Value& v : values) {
      auto code = dict.Find(v);
      DM_DCHECK(code.has_value());
      w.Append(*code);
    }
    return FromParts(std::move(dict), std::move(codes));
  }

  /// N_M.
  uint64_t size() const { return codes_.size(); }
  bool empty() const { return codes_.empty(); }

  /// |U_M|.
  uint64_t unique_values() const { return dictionary_.size(); }

  /// E_C in bits.
  uint8_t code_bits() const { return codes_.bits(); }

  uint32_t GetCode(uint64_t i) const { return codes_.Get(i); }

  /// Materializes tuple i: code lookup + dictionary random access.
  const Value& GetValue(uint64_t i) const {
    return dictionary_.At(codes_.Get(i));
  }

  const Dictionary<W>& dictionary() const { return dictionary_; }
  const PackedVector& codes() const { return codes_; }

  /// Compressed bytes held (packed codes + dictionary values).
  size_t memory_bytes() const {
    return codes_.byte_size() + dictionary_.byte_size();
  }

  // --- durability (checkpoint files; see src/persist) ----------------------

  /// Writes dictionary then codes — the complete read-optimized state of
  /// one column, exactly what a merge commit installs.
  Status Serialize(FileWriter& out) const {
    DM_RETURN_NOT_OK(dictionary_.Serialize(out));
    return codes_.Serialize(out);
  }

  /// Reads a partition written by Serialize; revalidates the dictionary /
  /// code-width pairing FromParts enforces.
  static Result<MainPartition> Deserialize(FileReader& in) {
    DM_ASSIGN_OR_RETURN(Dictionary<W> dict, Dictionary<W>::Deserialize(in));
    DM_ASSIGN_OR_RETURN(PackedVector codes, PackedVector::Deserialize(in));
    if (!codes.empty() && codes.bits() != dict.code_bits()) {
      return Status::Internal("code width does not match dictionary");
    }
    return FromParts(std::move(dict), std::move(codes));
  }

 private:
  Dictionary<W> dictionary_;
  PackedVector codes_;
};

}  // namespace deltamerge
