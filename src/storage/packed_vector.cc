// Copyright (c) 2026 The DeltaMerge Authors.

#include "storage/packed_vector.h"

namespace deltamerge {

void PackedVector::Reset(uint64_t size, uint8_t bits) {
  DM_CHECK_MSG(bits >= 1 && bits <= kMaxBits, "code width out of range");
  bits_ = bits;
  size_ = size;
  capacity_ = size;
  // One spare word so the two-word read in Get()/Reader is always in bounds
  // even when the last code ends exactly at a word boundary.
  buffer_ = AlignedBuffer(PackedBytes(size, bits) + sizeof(uint64_t));
}

}  // namespace deltamerge
