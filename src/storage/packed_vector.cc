// Copyright (c) 2026 The DeltaMerge Authors.

#include "storage/packed_vector.h"

namespace deltamerge {

void PackedVector::Reset(uint64_t size, uint8_t bits) {
  DM_CHECK_MSG(bits >= 1 && bits <= kMaxBits, "code width out of range");
  bits_ = bits;
  size_ = size;
  capacity_ = size;
  // One spare word so the two-word read in Get()/Reader is always in bounds
  // even when the last code ends exactly at a word boundary.
  buffer_ = AlignedBuffer(PackedBytes(size, bits) + sizeof(uint64_t));
}

Status PackedVector::Serialize(FileWriter& out) const {
  const uint64_t word_count = PackedBytes(size_, bits_) / sizeof(uint64_t);
  DM_RETURN_NOT_OK(out.WriteU64(size_));
  DM_RETURN_NOT_OK(out.WriteU8(bits_));
  DM_RETURN_NOT_OK(out.WriteU64(word_count));
  if (word_count > 0) {
    DM_RETURN_NOT_OK(out.Write(words(), word_count * sizeof(uint64_t)));
  }
  return Status::OK();
}

Result<PackedVector> PackedVector::Deserialize(FileReader& in) {
  uint64_t size = 0;
  uint8_t bits = 0;
  uint64_t word_count = 0;
  DM_RETURN_NOT_OK(in.ReadU64(&size));
  DM_RETURN_NOT_OK(in.ReadU8(&bits));
  DM_RETURN_NOT_OK(in.ReadU64(&word_count));
  if (bits < 1 || bits > kMaxBits) {
    return Status::Internal("packed vector bit width out of range");
  }
  // Untrusted sizes (the CRC trailer is only checked after the reads):
  // bound by the file size with divisions before any multiply can wrap,
  // and reject sizes whose bit count would overflow PackedBytes.
  if (word_count > in.file_size() / sizeof(uint64_t) ||
      size > uint64_t{1} << 48 ||
      word_count != PackedBytes(size, bits) / sizeof(uint64_t)) {
    return Status::Internal("packed vector shape does not match word count");
  }
  PackedVector v(size, bits);
  if (word_count > 0) {
    DM_RETURN_NOT_OK(in.Read(v.words(), word_count * sizeof(uint64_t)));
  }
  return v;
}

}  // namespace deltamerge
