// Copyright (c) 2026 The DeltaMerge Authors.

#include "storage/validity.h"

#include <cstddef>

namespace deltamerge {

uint64_t ValidityVector::Append(uint64_t n) {
  const uint64_t first = size_;
  size_ += n;
  valid_count_ += n;
  const uint64_t needed_words = (size_ + 63) >> 6;
  if (words_.size() < needed_words) {
    words_.resize(needed_words, 0);
  }
  for (uint64_t row = first; row < size_; ++row) {
    words_[row >> 6] |= uint64_t{1} << (row & 63);
  }
  return first;
}

void ValidityVector::Invalidate(uint64_t row) {
  DM_DCHECK(row < size_);
  uint64_t& word = words_[row >> 6];
  const uint64_t mask = uint64_t{1} << (row & 63);
  if (word & mask) {
    word &= ~mask;
    --valid_count_;
    tombstone_seq_by_row_.emplace(row, tombstone_seq());
    tombstones_.push_back(row);
  }
}

bool ValidityVector::IsValidAtSeq(uint64_t row, uint64_t seq) const {
  if (IsValid(row)) return true;
  // The row is invalid now; it was still valid at `seq` iff its (unique)
  // invalidation landed at or after `seq`. A pruned (absent) entry is
  // necessarily below every live snapshot's seq.
  const auto it = tombstone_seq_by_row_.find(row);
  return it != tombstone_seq_by_row_.end() && it->second >= seq;
}

void ValidityVector::PruneTombstones() {
  tombstone_base_ += tombstones_.size();
  tombstones_.clear();
  tombstone_seq_by_row_.clear();
}

void ValidityVector::PruneTombstonesBefore(uint64_t seq) {
  if (seq <= tombstone_base_) return;
  uint64_t drop = seq - tombstone_base_;
  if (drop > tombstones_.size()) drop = tombstones_.size();
  for (uint64_t i = 0; i < drop; ++i) {
    tombstone_seq_by_row_.erase(tombstones_[i]);
  }
  tombstones_.erase(tombstones_.begin(),
                    tombstones_.begin() + static_cast<ptrdiff_t>(drop));
  tombstone_base_ += drop;
}

std::vector<uint64_t> ValidityVector::CopyWordsPrefix(uint64_t rows) const {
  DM_CHECK_MSG(rows <= size_, "validity prefix beyond vector size");
  const uint64_t nwords = (rows + 63) >> 6;
  std::vector<uint64_t> out(words_.begin(),
                            words_.begin() + static_cast<ptrdiff_t>(nwords));
  if ((rows & 63) != 0 && !out.empty()) {
    out.back() &= (uint64_t{1} << (rows & 63)) - 1;
  }
  return out;
}

uint64_t ValidityVector::CountValidPrefix(uint64_t rows) const {
  DM_CHECK_MSG(rows <= size_, "validity prefix beyond vector size");
  uint64_t n = 0;
  const uint64_t full_words = rows >> 6;
  for (uint64_t w = 0; w < full_words; ++w) {
    n += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
  }
  if ((rows & 63) != 0) {
    const uint64_t mask = (uint64_t{1} << (rows & 63)) - 1;
    n += static_cast<uint64_t>(__builtin_popcountll(words_[full_words] & mask));
  }
  return n;
}

ValidityVector ValidityVector::FromWords(std::vector<uint64_t> words,
                                         uint64_t rows) {
  DM_CHECK_MSG(words.size() >= ((rows + 63) >> 6),
               "validity words do not cover the row count");
  ValidityVector v;
  v.words_ = std::move(words);
  v.size_ = rows;
  // Clear any stray bits beyond `rows` so valid_count_ and IsValid agree.
  if ((rows & 63) != 0) {
    v.words_[rows >> 6] &= (uint64_t{1} << (rows & 63)) - 1;
  }
  v.valid_count_ = v.CountValidPrefix(rows);
  return v;
}

void ValidityVector::Clear() {
  words_.clear();
  size_ = 0;
  valid_count_ = 0;
  tombstones_.clear();
  tombstone_base_ = 0;
  tombstone_seq_by_row_.clear();
}

}  // namespace deltamerge
