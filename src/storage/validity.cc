// Copyright (c) 2026 The DeltaMerge Authors.

#include "storage/validity.h"

namespace deltamerge {

uint64_t ValidityVector::Append(uint64_t n) {
  const uint64_t first = size_;
  size_ += n;
  valid_count_ += n;
  const uint64_t needed_words = (size_ + 63) >> 6;
  if (words_.size() < needed_words) {
    words_.resize(needed_words, 0);
  }
  for (uint64_t row = first; row < size_; ++row) {
    words_[row >> 6] |= uint64_t{1} << (row & 63);
  }
  return first;
}

void ValidityVector::Invalidate(uint64_t row) {
  DM_DCHECK(row < size_);
  uint64_t& word = words_[row >> 6];
  const uint64_t mask = uint64_t{1} << (row & 63);
  if (word & mask) {
    word &= ~mask;
    --valid_count_;
  }
}

void ValidityVector::Clear() {
  words_.clear();
  size_ = 0;
  valid_count_ = 0;
}

}  // namespace deltamerge
