// Copyright (c) 2026 The DeltaMerge Authors.

#include "storage/validity.h"

#include <algorithm>
#include <cstddef>

namespace deltamerge {

uint64_t ValidityVector::Append(uint64_t n, uint64_t ts) {
  const uint64_t first = size_;
  size_ += n;
  valid_count_ += n;
  const uint64_t needed_words = (size_ + 63) >> 6;
  if (words_.size() < needed_words) {
    words_.resize(needed_words, 0);
  }
  insert_ts_.resize(size_, ts);
  for (uint64_t row = first; row < size_; ++row) {
    words_[row >> 6] |= uint64_t{1} << (row & 63);
  }
  return first;
}

void ValidityVector::Invalidate(uint64_t row, uint64_t ts) {
  DM_DCHECK(row < size_);
  uint64_t& word = words_[row >> 6];
  const uint64_t mask = uint64_t{1} << (row & 63);
  if (word & mask) {
    word &= ~mask;
    --valid_count_;
    DM_DCHECK(tombstones_.empty() || tombstones_.back().ts <= ts);
    inv_ts_by_row_.emplace(row, ts);
    tombstones_.push_back(Tombstone{row, ts});
  }
}

bool ValidityVector::IsValidAtTs(uint64_t row, uint64_t read_ts) const {
  if (insert_ts_[row] > read_ts) return false;  // born after the capture
  if (IsValid(row)) return true;
  // The row is invalid now; it was still alive at `read_ts` iff its (unique)
  // invalidation committed after it. A pruned (absent) entry committed at or
  // below every live read timestamp, so "invalid" is the right answer.
  const auto it = inv_ts_by_row_.find(row);
  return it != inv_ts_by_row_.end() && it->second > read_ts;
}

void ValidityVector::PruneTombstones() {
  tombstones_.clear();
  inv_ts_by_row_.clear();
}

void ValidityVector::PruneTombstonesBefore(uint64_t limit_ts) {
  size_t drop = 0;
  while (drop < tombstones_.size() && tombstones_[drop].ts <= limit_ts) {
    inv_ts_by_row_.erase(tombstones_[drop].row);
    ++drop;
  }
  tombstones_.erase(tombstones_.begin(),
                    tombstones_.begin() + static_cast<ptrdiff_t>(drop));
}

std::vector<uint64_t> ValidityVector::CopyWordsPrefix(uint64_t rows) const {
  DM_CHECK_MSG(rows <= size_, "validity prefix beyond vector size");
  const uint64_t nwords = (rows + 63) >> 6;
  std::vector<uint64_t> out(words_.begin(),
                            words_.begin() + static_cast<ptrdiff_t>(nwords));
  if ((rows & 63) != 0 && !out.empty()) {
    out.back() &= (uint64_t{1} << (rows & 63)) - 1;
  }
  return out;
}

std::vector<uint64_t> ValidityVector::CopyWordsAtTs(uint64_t rows,
                                                    uint64_t read_ts) const {
  DM_DCHECK(rows == 0 || insert_ts_[rows - 1] <= read_ts);
  std::vector<uint64_t> out = CopyWordsPrefix(rows);
  // Invalidation timestamps are monotone (commit order), so the entries to
  // resurrect — committed after read_ts — form a suffix of the log. A ts-0
  // entry is the pre-MVCC sentinel ("invalid at every read timestamp") and
  // never qualifies, matching IsValidAtTs.
  auto it = std::lower_bound(tombstones_.begin(), tombstones_.end(), read_ts,
                             [](const Tombstone& t, uint64_t ts) {
                               return t.ts <= ts;
                             });
  for (; it != tombstones_.end(); ++it) {
    if (it->row < rows) out[it->row >> 6] |= uint64_t{1} << (it->row & 63);
  }
  return out;
}

std::vector<uint64_t> ValidityVector::CopyInsertTsPrefix(uint64_t rows) const {
  DM_CHECK_MSG(rows <= size_, "validity prefix beyond vector size");
  return std::vector<uint64_t>(
      insert_ts_.begin(), insert_ts_.begin() + static_cast<ptrdiff_t>(rows));
}

uint64_t ValidityVector::CountValidPrefix(uint64_t rows) const {
  DM_CHECK_MSG(rows <= size_, "validity prefix beyond vector size");
  uint64_t n = 0;
  const uint64_t full_words = rows >> 6;
  for (uint64_t w = 0; w < full_words; ++w) {
    n += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
  }
  if ((rows & 63) != 0) {
    const uint64_t mask = (uint64_t{1} << (rows & 63)) - 1;
    n += static_cast<uint64_t>(__builtin_popcountll(words_[full_words] & mask));
  }
  return n;
}

ValidityVector ValidityVector::FromWords(std::vector<uint64_t> words,
                                         uint64_t rows,
                                         std::vector<uint64_t> insert_ts) {
  DM_CHECK_MSG(words.size() >= ((rows + 63) >> 6),
               "validity words do not cover the row count");
  DM_CHECK_MSG(insert_ts.empty() || insert_ts.size() == rows,
               "insert-ts column does not cover the row count");
  ValidityVector v;
  v.words_ = std::move(words);
  v.size_ = rows;
  v.insert_ts_ = std::move(insert_ts);
  v.insert_ts_.resize(rows, 0);
  // Clear any stray bits beyond `rows` so valid_count_ and IsValid agree.
  if ((rows & 63) != 0) {
    v.words_[rows >> 6] &= (uint64_t{1} << (rows & 63)) - 1;
  }
  v.valid_count_ = v.CountValidPrefix(rows);
  return v;
}

void ValidityVector::Clear() {
  words_.clear();
  size_ = 0;
  valid_count_ = 0;
  insert_ts_.clear();
  tombstones_.clear();
  inv_ts_by_row_.clear();
}

}  // namespace deltamerge
