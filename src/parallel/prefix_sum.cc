// Copyright (c) 2026 The DeltaMerge Authors.

#include "parallel/prefix_sum.h"

#include <vector>

#include "parallel/thread_team.h"

namespace deltamerge {

uint64_t ExclusivePrefixSum(std::span<uint64_t> data) {
  uint64_t running = 0;
  for (auto& v : data) {
    const uint64_t x = v;
    v = running;
    running += x;
  }
  return running;
}

uint64_t ParallelExclusivePrefixSum(ThreadTeam& team,
                                    std::span<uint64_t> data) {
  const int nt = team.size();
  const uint64_t n = data.size();
  if (nt == 1 || n < 4096) {
    return ExclusivePrefixSum(data);
  }

  std::vector<uint64_t> block_sums(static_cast<size_t>(nt), 0);

  // Pass 1: per-block exclusive scans, recording each block's total.
  team.Run([&](int tid) {
    const uint64_t begin = n * static_cast<uint64_t>(tid) / nt;
    const uint64_t end = n * (static_cast<uint64_t>(tid) + 1) / nt;
    uint64_t running = 0;
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t x = data[i];
      data[i] = running;
      running += x;
    }
    block_sums[static_cast<size_t>(tid)] = running;
  });

  // Scan of the (tiny) block-sum array.
  const uint64_t total = ExclusivePrefixSum(block_sums);

  // Pass 2: add each block's offset.
  team.Run([&](int tid) {
    const uint64_t begin = n * static_cast<uint64_t>(tid) / nt;
    const uint64_t end = n * (static_cast<uint64_t>(tid) + 1) / nt;
    const uint64_t offset = block_sums[static_cast<size_t>(tid)];
    for (uint64_t i = begin; i < end; ++i) {
      data[i] += offset;
    }
  });

  return total;
}

}  // namespace deltamerge
