// Copyright (c) 2026 The DeltaMerge Authors.
// Merge-path partitioning: given two sorted arrays, find for any output
// diagonal d the unique split (i, j), i + j = d, such that a stable two-way
// merge of a[0..i) and b[0..j) produces exactly the first d outputs.
//
// This is the N_T-quantile partitioning §6.2.1 uses to parallelize the
// dictionary merge: "Since both dictionaries are sorted this can be achieved
// in N_T log(|U_M|+|U_D|) steps [8] ... each thread can compute its start and
// end indices in the two dictionaries and proceed with the merge" [5].
//
// Stability convention: on ties the element from `a` is emitted first. All of
// Step 1(b) relies on this so that duplicate pairs (one value present in both
// dictionaries) appear adjacently as (a-copy, b-copy).

#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "util/macros.h"

namespace deltamerge {

/// Returns the (i, j) split of `diag` for the stable merge of a and b.
/// O(log(min(|a|, |b|, diag))).
template <typename V>
std::pair<uint64_t, uint64_t> MergePathSplit(std::span<const V> a,
                                             std::span<const V> b,
                                             uint64_t diag) {
  const uint64_t n = a.size();
  const uint64_t m = b.size();
  DM_DCHECK(diag <= n + m);

  // i ranges over [lo, hi]; j = diag - i.
  uint64_t lo = diag > m ? diag - m : 0;
  uint64_t hi = diag < n ? diag : n;
  while (lo < hi) {
    const uint64_t i = lo + (hi - lo) / 2;
    const uint64_t j = diag - i;
    if (i < n && j > 0 && b[j - 1] >= a[i]) {
      // b[j-1] was emitted but a[i] (<= it under stability) was not: i small.
      lo = i + 1;
    } else if (i > 0 && j < m && a[i - 1] > b[j]) {
      // a[i-1] was emitted but the strictly smaller b[j] was not: i too big.
      hi = i - 1;
    } else {
      return {i, j};
    }
  }
  return {lo, diag - lo};
}

/// The boundary-duplicate fix-up of §6.2.1 phase 1: each input is internally
/// unique, so the only duplicate a range split can tear apart is a value
/// present in both inputs whose a-copy ended the previous thread's range and
/// whose b-copy starts this one. "This case is checked for by comparing the
/// start elements in the two dictionaries with the previous elements in the
/// respectively other dictionary. In case there is a match, the corresponding
/// pointer is incremented before starting the merge process."
///
/// (The mirror case — a[i] equal to b[j-1] — cannot occur at a valid stable
/// merge-path split, since stability emits the a-copy first.)
template <typename V>
void SkipBoundaryDuplicate(std::span<const V> a, uint64_t* i,
                           std::span<const V> b, uint64_t* j,
                           uint64_t b_end) {
  if (*i > 0 && *j < b_end && b[*j] == a[*i - 1]) {
    ++(*j);
  }
}

/// Counts the distinct values a duplicate-removing stable merge of
/// a[a0..a1) and b[b0..b1) emits. Callers must have applied
/// SkipBoundaryDuplicate to (a0, b0) first. Phase 1 of the three-phase
/// parallel merge: count only, no writes.
template <typename V>
uint64_t CountUniqueMergeRange(std::span<const V> a, uint64_t a0, uint64_t a1,
                               std::span<const V> b, uint64_t b0,
                               uint64_t b1) {
  uint64_t i = a0, j = b0, count = 0;
  while (i < a1 || j < b1) {
    if (j >= b1 || (i < a1 && a[i] <= b[j])) {
      const V v = a[i++];
      if (j < b1 && b[j] == v) ++j;  // collapse the in-range b-copy
    } else {
      ++j;
    }
    ++count;
  }
  return count;
}

}  // namespace deltamerge
