// Copyright (c) 2026 The DeltaMerge Authors.
// Prefix sums. Phase 2 of the parallel dictionary merge computes the prefix
// sum of the per-thread unique counters "using the algorithm by Hillis et
// al. [12]" (§6.2.1); the generic parallel version here follows the blocked
// scan shape (local reduce, scan of block sums, local rescan).

#pragma once

#include <cstdint>
#include <span>

namespace deltamerge {

class ThreadTeam;

/// In-place exclusive prefix sum; returns the total.
uint64_t ExclusivePrefixSum(std::span<uint64_t> data);

/// Parallel in-place exclusive prefix sum over the team; returns the total.
/// Matches ExclusivePrefixSum bit-for-bit.
uint64_t ParallelExclusivePrefixSum(ThreadTeam& team,
                                    std::span<uint64_t> data);

}  // namespace deltamerge
