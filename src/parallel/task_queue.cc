// Copyright (c) 2026 The DeltaMerge Authors.

#include "parallel/task_queue.h"

namespace deltamerge {

TaskQueue::TaskQueue(int num_threads) {
  DM_CHECK_MSG(num_threads >= 1, "TaskQueue needs at least one thread");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() {
  WaitAll();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void TaskQueue::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

bool TaskQueue::RunOne(std::unique_lock<std::mutex>& lock) {
  if (tasks_.empty()) return false;
  auto task = std::move(tasks_.front());
  tasks_.pop_front();
  lock.unlock();
  task();
  lock.lock();
  --in_flight_;
  if (in_flight_ == 0) all_done_.notify_all();
  return true;
}

void TaskQueue::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  // Help out instead of blocking: guarantees progress even when all workers
  // are stuck behind this caller (e.g. nested WaitAll) and speeds up drains.
  while (in_flight_ != 0) {
    if (!RunOne(lock)) {
      all_done_.wait(lock, [this] { return in_flight_ == 0 || !tasks_.empty(); });
    }
  }
}

void TaskQueue::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
    if (stopping_ && tasks_.empty()) return;
    RunOne(lock);
  }
}

}  // namespace deltamerge
