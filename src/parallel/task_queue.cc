// Copyright (c) 2026 The DeltaMerge Authors.

#include "parallel/task_queue.h"

#include <utility>

namespace deltamerge {

TaskQueue::TaskQueue(int num_threads) {
  DM_CHECK_MSG(num_threads >= 1, "TaskQueue needs at least one thread");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() {
  WaitAll();
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void TaskQueue::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

bool TaskQueue::RunOneLocked() {
  if (tasks_.empty()) return false;
  auto task = std::move(tasks_.front());
  tasks_.pop_front();
  mu_.unlock();
  task();
  mu_.lock();
  --in_flight_;
  if (in_flight_ == 0) all_done_.NotifyAll();
  return true;
}

void TaskQueue::WaitAll() {
  MutexLock lock(mu_);
  // Help out instead of blocking: guarantees progress even when all workers
  // are stuck behind this caller (e.g. nested WaitAll) and speeds up drains.
  while (in_flight_ != 0) {
    if (!RunOneLocked()) {
      while (in_flight_ != 0 && tasks_.empty()) all_done_.Wait(mu_);
    }
  }
}

void TaskQueue::WorkerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stopping_ && tasks_.empty()) task_ready_.Wait(mu_);
    if (stopping_ && tasks_.empty()) return;
    RunOneLocked();
  }
}

}  // namespace deltamerge
