// Copyright (c) 2026 The DeltaMerge Authors.
// TaskQueue: a shared work queue over a fixed worker pool.
//
// Merge parallelization scheme (i) of §6.2.1: "we use a task queue based
// parallelization scheme and enqueue each column as a separate task. If the
// number of tasks is much larger than the number of threads ... the task
// queue mechanism of migrating tasks between threads works well in practice
// to achieve a good load balance." Columns differ in dictionary size, so the
// queue (rather than a static split) is what load-balances the merge.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace deltamerge {

class TaskQueue {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit TaskQueue(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~TaskQueue();

  DM_DISALLOW_COPY_AND_MOVE(TaskQueue);

  /// Enqueues a task. Tasks may Submit() further tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished. The calling thread helps execute tasks while
  /// waiting, so a 1-thread queue still makes progress from within WaitAll.
  void WaitAll();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();
  bool RunOne(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  uint64_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deltamerge
