// Copyright (c) 2026 The DeltaMerge Authors.
// TaskQueue: a shared work queue over a fixed worker pool.
//
// Merge parallelization scheme (i) of §6.2.1: "we use a task queue based
// parallelization scheme and enqueue each column as a separate task. If the
// number of tasks is much larger than the number of threads ... the task
// queue mechanism of migrating tasks between threads works well in practice
// to achieve a good load balance." Columns differ in dictionary size, so the
// queue (rather than a static split) is what load-balances the merge.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace deltamerge {

class TaskQueue {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit TaskQueue(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~TaskQueue();

  DM_DISALLOW_COPY_AND_MOVE(TaskQueue);

  /// Enqueues a task. Tasks may Submit() further tasks.
  void Submit(std::function<void()> task) DM_EXCLUDES(mu_);

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished. The calling thread helps execute tasks while
  /// waiting, so a 1-thread queue still makes progress from within WaitAll.
  void WaitAll() DM_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() DM_EXCLUDES(mu_);

  /// Pops and runs one task if any is queued; returns whether it ran one.
  /// Drops mu_ around the task body and re-acquires it before returning —
  /// the caller's lockset is unchanged, which is exactly what DM_REQUIRES
  /// expresses.
  bool RunOneLocked() DM_REQUIRES(mu_);

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::deque<std::function<void()>> tasks_ DM_GUARDED_BY(mu_);
  uint64_t in_flight_ DM_GUARDED_BY(mu_) = 0;  // queued + executing
  bool stopping_ DM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace deltamerge
