// Copyright (c) 2026 The DeltaMerge Authors.
// ThreadTeam: a reusable gang of N_T threads executing one SPMD job at a
// time. The intra-column merge phases (§6.2.1's three-phase dictionary merge,
// §6.2.2's chunked value update) are gang-scheduled: every thread runs
// fn(thread_id) and Run() returns when all are done. A 1-thread team executes
// inline, so serial baselines pay no synchronization cost.

#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace deltamerge {

class ThreadTeam {
 public:
  explicit ThreadTeam(int num_threads) : size_(num_threads) {
    DM_CHECK_MSG(num_threads >= 1, "ThreadTeam needs at least one thread");
    // Thread 0 is the caller; spawn only the other size_-1 workers.
    for (int tid = 1; tid < size_; ++tid) {
      workers_.emplace_back([this, tid] { WorkerLoop(tid); });
    }
  }

  ~ThreadTeam() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
      ++generation_;
    }
    start_.NotifyAll();
    for (auto& w : workers_) w.join();
  }

  DM_DISALLOW_COPY_AND_MOVE(ThreadTeam);

  int size() const { return size_; }

  /// Runs fn(tid) for tid in [0, size()); fn(0) executes on the caller.
  /// Returns when every thread has finished. Not reentrant.
  void Run(const std::function<void(int)>& fn) DM_EXCLUDES(mu_) {
    if (size_ == 1) {
      fn(0);
      return;
    }
    {
      MutexLock lock(mu_);
      job_ = &fn;
      done_count_ = 0;
      ++generation_;
    }
    start_.NotifyAll();
    fn(0);
    MutexLock lock(mu_);
    ++done_count_;
    if (done_count_ == size_) {
      job_ = nullptr;
    } else {
      while (done_count_ != size_) finished_.Wait(mu_);
    }
  }

 private:
  void WorkerLoop(int tid) DM_EXCLUDES(mu_) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        MutexLock lock(mu_);
        while (generation_ == seen) start_.Wait(mu_);
        seen = generation_;
        if (stopping_) return;
        job = job_;
      }
      (*job)(tid);
      {
        MutexLock lock(mu_);
        ++done_count_;
        if (done_count_ == size_) finished_.NotifyAll();
      }
    }
  }

  const int size_;
  Mutex mu_;
  CondVar start_;
  CondVar finished_;
  const std::function<void(int)>* job_ DM_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ DM_GUARDED_BY(mu_) = 0;
  int done_count_ DM_GUARDED_BY(mu_) = 0;
  bool stopping_ DM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Splits [0, total) into team.size() near-equal chunks, optionally rounding
/// chunk starts down to a multiple of `align` (the packed-vector word-safety
/// requirement), and runs fn(begin, end, tid) on each thread.
template <typename Fn>
void ParallelFor(ThreadTeam& team, uint64_t total, uint64_t align, Fn&& fn) {
  const int nt = team.size();
  team.Run([&](int tid) {
    uint64_t begin = total * static_cast<uint64_t>(tid) /
                     static_cast<uint64_t>(nt);
    uint64_t end = total * (static_cast<uint64_t>(tid) + 1) /
                   static_cast<uint64_t>(nt);
    if (align > 1) {
      begin = begin / align * align;
      end = (tid == nt - 1) ? total : end / align * align;
    }
    if (begin < end) fn(begin, end, tid);
  });
}

}  // namespace deltamerge
